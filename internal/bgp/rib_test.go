package bgp

import (
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func TestRIBFig2a(t *testing.T) {
	g := fig2a(t)
	d := Compute(g, 0)
	// AS 1's RIB: direct customer route via 0, plus peer routes via 2 and 3
	// (both export their customer routes to peers).
	rib := RIB(g, d, 1)
	if len(rib) != 3 {
		t.Fatalf("RIB size = %d, want 3: %+v", len(rib), rib)
	}
	if rib[0].Via != 0 || rib[0].Class != ClassCustomer {
		t.Errorf("best = %+v, want customer via 0", rib[0])
	}
	if rib[1].Via != 2 || rib[1].Class != ClassPeer || rib[1].Hops != 2 {
		t.Errorf("alt 1 = %+v, want peer via 2 hops 2", rib[1])
	}
	if rib[2].Via != 3 || rib[2].Class != ClassPeer {
		t.Errorf("alt 2 = %+v, want peer via 3", rib[2])
	}
	if RIB(g, d, 0) != nil {
		t.Error("destination's RIB should be nil")
	}
	if got := RIBSize(g, d, 1); got != 3 {
		t.Errorf("RIBSize = %d, want 3", got)
	}
}

func TestRIBExportPolicy(t *testing.T) {
	// AS 2 has only a provider route to 0 (via its provider 1).
	// AS 3 peers with 2: 2 must NOT export its provider route to 3.
	// AS 4 is 2's customer: 2 MUST export to 4.
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(1, 2).AddPeer(2, 3).AddPC(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if d.Class(2) != ClassProvider {
		t.Fatalf("AS2 class = %v, want provider", d.Class(2))
	}
	for _, alt := range RIB(g, d, 3) {
		if alt.Via == 2 {
			t.Error("AS2 leaked a provider route to its peer AS3")
		}
	}
	found := false
	for _, alt := range RIB(g, d, 4) {
		if alt.Via == 2 {
			found = true
			if alt.Class != ClassProvider {
				t.Errorf("route at AS4 via 2 classified %v, want provider", alt.Class)
			}
		}
	}
	if !found {
		t.Error("AS2 must export its route to customer AS4")
	}
}

func TestRIBLoopFilter(t *testing.T) {
	// n(2) is provider of v(1); v is provider of x(3); x is provider of d(0).
	// n's best route to 0 goes through v, so n's announcement back to v must
	// be dropped by the AS-path loop filter.
	b := topo.NewBuilder(4)
	b.AddPC(2, 1).AddPC(1, 3).AddPC(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if d.NextHop(2) != 1 {
		t.Fatalf("AS2 should route via 1, got %d", d.NextHop(2))
	}
	rib := RIB(g, d, 1)
	for _, alt := range rib {
		if alt.Via == 2 {
			t.Errorf("RIB at AS1 contains looping route via 2: %+v", rib)
		}
	}
	if len(rib) != 1 || rib[0].Via != 3 {
		t.Errorf("RIB at AS1 = %+v, want only the customer route via 3", rib)
	}
}

func TestAltBetterOrdering(t *testing.T) {
	a := Alt{Via: 5, Class: ClassCustomer, Hops: 9}
	b := Alt{Via: 1, Class: ClassPeer, Hops: 1}
	if !a.Better(b) {
		t.Error("customer route must beat shorter peer route")
	}
	c := Alt{Via: 9, Class: ClassPeer, Hops: 2}
	if !b.Better(c) {
		t.Error("shorter path must win within a class")
	}
	e := Alt{Via: 2, Class: ClassPeer, Hops: 1}
	if !b.Better(e) {
		t.Error("lower next-hop must win at equal class and length")
	}
}

func TestPathVia(t *testing.T) {
	g := fig2a(t)
	d := Compute(g, 0)
	p := PathVia(d, 1, 2)
	want := []int{1, 2, 0}
	if len(p) != 3 || p[0] != want[0] || p[1] != want[1] || p[2] != want[2] {
		t.Errorf("PathVia = %v, want %v", p, want)
	}
	if PathVia(d, 1, 1) == nil {
		t.Error("PathVia through a reachable AS should not be nil")
	}
}

// Property: on generated topologies, the best route equals the top of the
// RIB — Compute and RIB implement the same selection independently.
func TestQuickBestMatchesRIBHead(t *testing.T) {
	f := func(seed int64) bool {
		g, err := topo.Generate(topo.GenConfig{N: 150, Seed: seed})
		if err != nil {
			return false
		}
		d := Compute(g, 0)
		for v := 1; v < g.N(); v++ {
			rib := RIB(g, d, v)
			if !d.Reachable(v) {
				if len(rib) != 0 {
					return false
				}
				continue
			}
			if len(rib) == 0 {
				return false
			}
			head := rib[0]
			if int(head.Via) != d.NextHop(v) || int(head.Hops) != d.Hops(v) {
				return false
			}
			if head.Class != d.Class(v) {
				return false
			}
			// And the RIB must be sorted best-first.
			for i := 1; i < len(rib); i++ {
				if rib[i].Better(rib[i-1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: every alternative's spliced path PathVia is loop-free.
func TestQuickAlternativePathsSimple(t *testing.T) {
	f := func(seed int64) bool {
		g, err := topo.Generate(topo.GenConfig{N: 120, Seed: seed})
		if err != nil {
			return false
		}
		d := Compute(g, 5%g.N())
		for v := 0; v < g.N(); v += 7 {
			if v == d.Dst() {
				continue
			}
			for _, alt := range RIB(g, d, v) {
				p := PathVia(d, v, int(alt.Via))
				seen := map[int]bool{}
				for _, x := range p {
					if seen[x] {
						return false
					}
					seen[x] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The design's diversity bound (Section II-B): an AS can never have more
// RIB entries than neighbors, and RIBSize agrees with len(RIB).
func TestQuickRIBBoundedByDegree(t *testing.T) {
	f := func(seed int64) bool {
		g, err := topo.Generate(topo.GenConfig{N: 150, Seed: seed})
		if err != nil {
			return false
		}
		d := Compute(g, 2)
		for v := 0; v < g.N(); v++ {
			if v == 2 {
				continue
			}
			rib := RIB(g, d, v)
			if len(rib) > g.Degree(v) {
				return false
			}
			if RIBSize(g, d, v) != len(rib) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Multi-homing pays off: across a generated topology, ASes with more
// neighbors hold larger RIBs on average (the paper's "degree of path
// diversity ... is dependent on how many neighbors it has").
func TestRIBGrowsWithDegree(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	var lowSum, lowN, highSum, highN float64
	for v := 1; v < g.N(); v++ {
		size := float64(RIBSize(g, d, v))
		if g.Degree(v) <= 2 {
			lowSum += size
			lowN++
		} else if g.Degree(v) >= 6 {
			highSum += size
			highN++
		}
	}
	if lowN == 0 || highN == 0 {
		t.Skip("degree classes not populated")
	}
	if highSum/highN <= lowSum/lowN {
		t.Errorf("mean RIB size: high-degree %v <= low-degree %v", highSum/highN, lowSum/lowN)
	}
}

func BenchmarkRIB(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 2000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	d := Compute(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RIB(g, d, 1+i%(g.N()-1))
	}
}
