package bgp

import (
	"testing"

	"repro/internal/topo"
)

// fig2a builds the paper's Fig. 2(a) topology: ASes 1, 2, 3 peer with each
// other; AS 0 is a customer of all three.
func fig2a(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatalf("fig2a build: %v", err)
	}
	return g
}

func TestComputeFig2a(t *testing.T) {
	g := fig2a(t)
	d := Compute(g, 0)
	if d.Dst() != 0 {
		t.Fatalf("Dst = %d", d.Dst())
	}
	if d.Class(0) != ClassOrigin || d.Hops(0) != 0 {
		t.Errorf("origin: class=%v hops=%d", d.Class(0), d.Hops(0))
	}
	for _, v := range []int{1, 2, 3} {
		if d.Class(v) != ClassCustomer {
			t.Errorf("AS %d class = %v, want customer", v, d.Class(v))
		}
		if d.NextHop(v) != 0 || d.Hops(v) != 1 {
			t.Errorf("AS %d next=%d hops=%d, want direct", v, d.NextHop(v), d.Hops(v))
		}
	}
}

func TestClassPreferenceOrder(t *testing.T) {
	// AS 4 has three ways to dst 0:
	//   customer route via 3 (long: 4->3->2->1->0, all downhill),
	//   peer route via 5 (5 is customer-routed to 0),
	//   provider route via 6 (direct).
	// Customer must win despite being longest.
	b := topo.NewBuilder(7)
	b.AddPC(1, 0).AddPC(2, 1).AddPC(3, 2).AddPC(4, 3) // chain 4>3>2>1>0
	b.AddPC(5, 0).AddPeer(4, 5)                       // peer route, 2 hops
	b.AddPC(6, 0).AddPC(6, 4)                         // provider route, 2 hops
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if d.Class(4) != ClassCustomer || d.NextHop(4) != 3 || d.Hops(4) != 4 {
		t.Errorf("AS4: class=%v next=%d hops=%d, want customer via 3 hops 4",
			d.Class(4), d.NextHop(4), d.Hops(4))
	}
	// Remove preference conflict: AS 5 itself should use its customer route.
	if d.Class(5) != ClassCustomer || d.NextHop(5) != 0 {
		t.Errorf("AS5: class=%v next=%d, want customer via 0", d.Class(5), d.NextHop(5))
	}
}

func TestPeerOverProvider(t *testing.T) {
	// AS 3 has no customer route: peer route via 1 vs provider route via 2.
	b := topo.NewBuilder(4)
	b.AddPC(1, 0)   // 1 has customer route to 0
	b.AddPC(2, 0)   // 2 has customer route to 0
	b.AddPeer(3, 1) // 3 peers with 1
	b.AddPC(2, 3)   // 2 is 3's provider
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if d.Class(3) != ClassPeer || d.NextHop(3) != 1 {
		t.Errorf("AS3: class=%v next=%d, want peer via 1", d.Class(3), d.NextHop(3))
	}
}

func TestShortestPathTieBreak(t *testing.T) {
	// AS 4 has two customer routes to 0: via 1 (2 hops) and via 3 (3 hops).
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(4, 1)             // 4 -> 1 -> 0
	b.AddPC(2, 0).AddPC(3, 2).AddPC(4, 3) // 4 -> 3 -> 2 -> 0
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if d.NextHop(4) != 1 || d.Hops(4) != 2 {
		t.Errorf("AS4 next=%d hops=%d, want shortest via 1", d.NextHop(4), d.Hops(4))
	}
}

func TestLowestNextHopTieBreak(t *testing.T) {
	// AS 4 has two equal-length customer routes via 1 and 2; 1 must win.
	b := topo.NewBuilder(5)
	b.AddPC(2, 0).AddPC(4, 2)
	b.AddPC(1, 0).AddPC(4, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if d.NextHop(4) != 1 {
		t.Errorf("AS4 next=%d, want 1 (lowest next-hop tie-break)", d.NextHop(4))
	}

	// Same for provider routes: AS 0 is customer of both 1 and 2, dst 3 is
	// reachable from both at equal length.
	b2 := topo.NewBuilder(4)
	b2.AddPC(1, 0).AddPC(2, 0)
	b2.AddPC(1, 3).AddPC(2, 3)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	d2 := Compute(g2, 3)
	if d2.Class(0) != ClassProvider || d2.NextHop(0) != 1 {
		t.Errorf("AS0: class=%v next=%d, want provider via 1", d2.Class(0), d2.NextHop(0))
	}
}

func TestUnreachable(t *testing.T) {
	// Two disconnected components: 0-1 and 2-3.
	b := topo.NewBuilder(4)
	b.AddPC(0, 1).AddPC(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 1)
	if !d.Reachable(0) || d.Reachable(2) || d.Reachable(3) {
		t.Error("reachability wrong across components")
	}
	if d.Hops(2) != -1 || d.NextHop(2) != -1 {
		t.Errorf("unreachable AS should report -1, got hops=%d next=%d", d.Hops(2), d.NextHop(2))
	}
	if d.ASPath(2) != nil {
		t.Error("ASPath of unreachable AS should be nil")
	}
}

func TestValleyBlocked(t *testing.T) {
	// dst 0 is customer of 1; 1 peers with 2; 2 peers with 3.
	// 3 must NOT reach 0: that would require transiting two peer links.
	b := topo.NewBuilder(4)
	b.AddPC(1, 0).AddPeer(1, 2).AddPeer(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if !d.Reachable(2) || d.Class(2) != ClassPeer {
		t.Errorf("AS2: class=%v, want peer route", d.Class(2))
	}
	if d.Reachable(3) {
		t.Error("AS3 should be unreachable (peer routes are not exported to peers)")
	}
}

func TestASPath(t *testing.T) {
	b := topo.NewBuilder(4)
	b.AddPC(1, 0).AddPC(2, 1).AddPC(3, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	path := d.ASPath(3)
	want := []int{3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := d.ASPath(0); len(p) != 1 || p[0] != 0 {
		t.Errorf("path at origin = %v, want [0]", p)
	}
}

func TestComputeAllParallelMatchesSerial(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dsts := []int{0, 5, 50, 399, 200}
	par := ComputeAll(g, dsts, 8)
	for i, dst := range dsts {
		ser := Compute(g, dst)
		for v := 0; v < g.N(); v++ {
			if par[i].Class(v) != ser.Class(v) || par[i].NextHop(v) != ser.NextHop(v) ||
				par[i].Hops(v) != ser.Hops(v) {
				t.Fatalf("dst %d AS %d: parallel differs from serial", dst, v)
			}
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassOrigin: "origin", ClassCustomer: "customer", ClassPeer: "peer",
		ClassProvider: "provider", ClassUnreachable: "unreachable",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("unknown class String() = %q", Class(99).String())
	}
}

// Every AS path produced on a generated topology must be simple (no repeated
// AS) and valley-free (uphill*, at most one peer step, downhill*).
func TestGeneratedPathsAreValleyFree(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 800, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, dst := range []int{0, 17, 400, 799} {
		d := Compute(g, dst)
		for src := 0; src < g.N(); src += 13 {
			if !d.Reachable(src) {
				t.Fatalf("AS %d cannot reach %d in a connected hierarchy", src, dst)
			}
			path := d.ASPath(src)
			assertSimple(t, path)
			assertValleyFree(t, g, path)
		}
	}
}

func assertSimple(t *testing.T, path []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, v := range path {
		if seen[v] {
			t.Fatalf("path %v revisits AS %d", path, v)
		}
		seen[v] = true
	}
}

// assertValleyFree checks the up*-peer?-down* shape.
func assertValleyFree(t *testing.T, g *topo.Graph, path []int) {
	t.Helper()
	const (
		up = iota
		peered
		down
	)
	phase := up
	for i := 0; i+1 < len(path); i++ {
		rel, ok := g.Rel(path[i], path[i+1])
		if !ok {
			t.Fatalf("path %v uses nonexistent link %d-%d", path, path[i], path[i+1])
		}
		switch rel {
		case topo.Provider: // moving uphill
			if phase != up {
				t.Fatalf("path %v goes uphill after peak at hop %d", path, i)
			}
		case topo.Peer:
			if phase != up {
				t.Fatalf("path %v has a second peer/peak at hop %d", path, i)
			}
			phase = peered
		case topo.Customer: // moving downhill
			phase = down
		}
	}
}

func BenchmarkCompute2k(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, i%g.N())
	}
}

func BenchmarkComputeAllParallel(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	dsts := make([]int, 64)
	for i := range dsts {
		dsts[i] = i * 31 % g.N()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeAll(g, dsts, 0)
	}
}
