package bgp

import (
	"repro/internal/topo"
)

// Alt is one entry of an AS's multi-path RIB for a destination: a route
// offered by a directly connected neighbor.
type Alt struct {
	// Via is the neighbor AS announcing the route (the would-be next hop).
	Via int32
	// Class is the route's class from the local AS's perspective.
	Class Class
	// Hops is the AS-path length of the route as seen locally
	// (the neighbor's path length plus one).
	Hops int16
}

// Better reports whether a is preferred over b under standard selection:
// class, then AS-path length, then lowest next-hop AS.
func (a Alt) Better(b Alt) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Hops != b.Hops {
		return a.Hops < b.Hops
	}
	return a.Via < b.Via
}

// RIB returns v's multi-path RIB towards d's destination: every route a
// neighbor exports to v under valley-free export policy, with the standard
// AS-path loop filter applied (routes whose path already contains v are
// discarded). Entries are sorted best-first, so RIB(...)[0] is the default
// route and the rest are MIFO's alternatives.
//
// The result is nil when v is the destination or has no routes.
func RIB(g *topo.Graph, d *Dest, v int) []Alt {
	return RIBInto(g, d, v, nil)
}

// RIBInto is RIB with a caller-provided scratch buffer: the result is
// built in buf[:0] (growing it if needed) and returned. A daemon that
// re-mines the RIB for every destination each control epoch reuses one
// buffer instead of allocating a fresh sorted slice per call (see
// BenchmarkSelectAlternative).
func RIBInto(g *topo.Graph, d *Dest, v int, buf []Alt) []Alt {
	if v == int(d.dst) {
		return nil
	}
	alts := buf[:0]
	for _, nb := range g.Neighbors(v) {
		n := int(nb.AS)
		nc := d.cls(n)
		if nc == ClassUnreachable {
			continue
		}
		// Export policy at n: to its customers n exports everything; to
		// peers and providers only customer (or origin) routes. nb.Rel is
		// n's role from v's viewpoint; v is n's customer iff n is v's
		// provider.
		if nb.Rel != topo.Provider && nc != ClassOrigin && nc != ClassCustomer {
			continue
		}
		// Standard loop filter: v must not appear in the announced path.
		if d.onBestPath(n, v) {
			continue
		}
		alts = append(alts, Alt{Via: nb.AS, Class: classOf(nb.Rel), Hops: d.hops16(n) + 1})
	}
	// Insertion sort, best-first; RIBs are small (== neighbor count).
	for i := 1; i < len(alts); i++ {
		for j := i; j > 0 && alts[j].Better(alts[j-1]); j-- {
			alts[j], alts[j-1] = alts[j-1], alts[j]
		}
	}
	return alts
}

// PathVia returns the AS path [v, via, ..., dst] taken when v forwards to
// neighbor via and the rest of the network follows default routes. It
// returns nil if via has no route.
func PathVia(d *Dest, v, via int) []int {
	if !d.Reachable(via) {
		return nil
	}
	path := make([]int, 0, int(d.hops16(via))+2)
	path = append(path, v)
	for x := via; ; x = int(d.next32(x)) {
		path = append(path, x)
		if int32(x) == d.dst {
			return path
		}
	}
}

// RIBSize returns the number of RIB entries at v for destination d without
// materializing them.
func RIBSize(g *topo.Graph, d *Dest, v int) int {
	if v == int(d.dst) {
		return 0
	}
	count := 0
	for _, nb := range g.Neighbors(v) {
		n := int(nb.AS)
		nc := d.cls(n)
		if nc == ClassUnreachable {
			continue
		}
		if nb.Rel != topo.Provider && nc != ClassOrigin && nc != ClassCustomer {
			continue
		}
		if d.onBestPath(n, v) {
			continue
		}
		count++
	}
	return count
}
