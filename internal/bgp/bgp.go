// Package bgp computes interdomain routes over an AS-level topology under
// the standard Gao–Rexford model the paper assumes (Section IV):
//
//   - Export: routes through peers and providers are exported only to
//     customers; customer routes (and one's own prefixes) are exported to
//     everyone ("valley-free" export).
//   - Selection: customer routes are preferred over peer routes, which are
//     preferred over provider routes; ties are broken first by AS-path
//     length, then by the lowest next-hop AS identifier.
//
// Besides the single best route per AS (what BGP's data plane uses), the
// package exposes the multi-path Adj-RIB-In that MIFO mines: for a given
// destination, every route a neighbor is willing to export. This is exactly
// the paper's "multiple paths with zero overhead" observation — path
// diversity equals the number of exporting neighbors.
package bgp

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/topo"
)

// Class ranks a route by the relationship through which it was learned.
// Lower is more preferred.
type Class int8

const (
	// ClassOrigin marks the destination AS itself.
	ClassOrigin Class = iota
	// ClassCustomer marks a route learned from a customer.
	ClassCustomer
	// ClassPeer marks a route learned from a peer.
	ClassPeer
	// ClassProvider marks a route learned from a provider.
	ClassProvider
	// ClassUnreachable marks the absence of any route.
	ClassUnreachable
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassOrigin:
		return "origin"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	case ClassUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// classOf translates the relationship of the announcing neighbor (as seen
// from the receiving AS) into the receiver's route class.
func classOf(rel topo.Rel) Class {
	switch rel {
	case topo.Customer:
		return ClassCustomer
	case topo.Peer:
		return ClassPeer
	default:
		return ClassProvider
	}
}

// Dest holds, for one destination AS, every AS's best route: its class,
// AS-path length (hops to the destination) and next-hop AS.
type Dest struct {
	dst   int32
	class []Class
	hops  []int16
	next  []int32 // -1 when unreachable
}

// Dst returns the destination AS index.
func (d *Dest) Dst() int { return int(d.dst) }

// Reachable reports whether v has any route to the destination.
func (d *Dest) Reachable(v int) bool { return d.class[v] != ClassUnreachable }

// Class returns the class of v's best route.
func (d *Dest) Class(v int) Class { return d.class[v] }

// Hops returns the AS-path length of v's best route (0 at the destination).
// It returns -1 when unreachable.
func (d *Dest) Hops(v int) int {
	if d.class[v] == ClassUnreachable {
		return -1
	}
	return int(d.hops[v])
}

// NextHop returns the next-hop AS on v's best route, or -1.
func (d *Dest) NextHop(v int) int { return int(d.next[v]) }

// ASPath returns the default AS-level path [src, ..., dst] following best
// routes, or nil when src has no route.
func (d *Dest) ASPath(src int) []int {
	if !d.Reachable(src) {
		return nil
	}
	path := make([]int, 0, d.hops[src]+1)
	v := src
	for {
		path = append(path, v)
		if int32(v) == d.dst {
			return path
		}
		v = int(d.next[v])
	}
}

// onBestPath reports whether v appears on the best path starting at n.
// Used for the standard AS-path loop filter when building the RIB.
func (d *Dest) onBestPath(n, v int) bool {
	for x := n; ; x = int(d.next[x]) {
		if x == v {
			return true
		}
		if int32(x) == d.dst {
			return false
		}
	}
}

// Compute derives every AS's best route towards dst with the three-phase
// algorithm (customer routes propagate up, peer routes cross once, provider
// routes propagate down). The result is deterministic.
func Compute(g *topo.Graph, dst int) *Dest {
	n := g.N()
	d := &Dest{
		dst:   int32(dst),
		class: make([]Class, n),
		hops:  make([]int16, n),
		next:  make([]int32, n),
	}
	for i := range d.class {
		d.class[i] = ClassUnreachable
		d.next[i] = -1
	}
	d.class[dst] = ClassOrigin

	// Phase 1: customer routes, BFS "uphill" over customer->provider edges,
	// level-by-level so the lowest-next-hop tie-break is exact.
	cur := []int32{int32(dst)}
	level := int16(0)
	for len(cur) > 0 {
		level++
		var nextLevel []int32
		for _, c := range cur {
			for _, nb := range g.Neighbors(int(c)) {
				if nb.Rel != topo.Provider {
					continue // only c's providers learn c's customer route
				}
				p := nb.AS
				switch {
				case d.class[p] == ClassUnreachable:
					d.class[p] = ClassCustomer
					d.hops[p] = level
					d.next[p] = c
					nextLevel = append(nextLevel, p)
				case d.class[p] == ClassCustomer && d.hops[p] == level && c < d.next[p]:
					d.next[p] = c // same length: lowest next-hop AS wins
				}
			}
		}
		cur = nextLevel
	}

	// Phase 2: peer routes. An AS with no customer route takes the best
	// customer (or origin) route offered by a peer.
	for v := 0; v < n; v++ {
		if d.class[v] != ClassUnreachable {
			continue
		}
		bestHops := int16(-1)
		bestPeer := int32(-1)
		for _, nb := range g.Neighbors(v) {
			if nb.Rel != topo.Peer {
				continue
			}
			u := nb.AS
			if d.class[u] != ClassOrigin && d.class[u] != ClassCustomer {
				continue // peers only export customer routes
			}
			h := d.hops[u] + 1
			if bestPeer < 0 || h < bestHops || (h == bestHops && u < bestPeer) {
				bestHops, bestPeer = h, u
			}
		}
		if bestPeer >= 0 {
			d.class[v] = ClassPeer
			d.hops[v] = bestHops
			d.next[v] = bestPeer
		}
	}

	// Phase 3: provider routes, propagated "downhill" in increasing path
	// length with a bucket queue (providers export their best route —
	// whatever its class — to customers).
	maxHops := 0
	buckets := make([][]int32, 1, 16)
	push := func(v int32, h int) {
		for h >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[h] = append(buckets[h], v)
		if h > maxHops {
			maxHops = h
		}
	}
	for v := 0; v < n; v++ {
		if d.class[v] != ClassUnreachable {
			push(int32(v), int(d.hops[v]))
		}
	}
	for h := 0; h <= maxHops; h++ {
		for _, x := range buckets[h] {
			if int(d.hops[x]) != h {
				continue // stale tentative entry superseded by a shorter route
			}
			for _, nb := range g.Neighbors(int(x)) {
				if nb.Rel != topo.Customer {
					continue // x exports downhill to customers only
				}
				c := nb.AS
				switch {
				case d.class[c] == ClassUnreachable:
					d.class[c] = ClassProvider
					d.hops[c] = int16(h + 1)
					d.next[c] = x
					push(c, h+1)
				case d.class[c] == ClassProvider && int(d.hops[c]) == h+1 && x < d.next[c]:
					d.next[c] = x
				}
			}
		}
	}
	return d
}

// ComputeAll computes Dest tables for every destination in dsts, in
// parallel. Results are positionally aligned with dsts.
func ComputeAll(g *topo.Graph, dsts []int, workers int) []*Dest {
	return parallel.Map(len(dsts), workers, func(i int) *Dest {
		return Compute(g, dsts[i])
	})
}
