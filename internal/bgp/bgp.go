// Package bgp computes interdomain routes over an AS-level topology under
// the standard Gao–Rexford model the paper assumes (Section IV):
//
//   - Export: routes through peers and providers are exported only to
//     customers; customer routes (and one's own prefixes) are exported to
//     everyone ("valley-free" export).
//   - Selection: customer routes are preferred over peer routes, which are
//     preferred over provider routes; ties are broken first by AS-path
//     length, then by the lowest next-hop AS identifier.
//
// Besides the single best route per AS (what BGP's data plane uses), the
// package exposes the multi-path Adj-RIB-In that MIFO mines: for a given
// destination, every route a neighbor is willing to export. This is exactly
// the paper's "multiple paths with zero overhead" observation — path
// diversity equals the number of exporting neighbors.
package bgp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/topo"
)

// Class ranks a route by the relationship through which it was learned.
// Lower is more preferred.
type Class int8

const (
	// ClassOrigin marks the destination AS itself.
	ClassOrigin Class = iota
	// ClassCustomer marks a route learned from a customer.
	ClassCustomer
	// ClassPeer marks a route learned from a peer.
	ClassPeer
	// ClassProvider marks a route learned from a provider.
	ClassProvider
	// ClassUnreachable marks the absence of any route.
	ClassUnreachable
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassOrigin:
		return "origin"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	case ClassUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// classOf translates the relationship of the announcing neighbor (as seen
// from the receiving AS) into the receiver's route class.
func classOf(rel topo.Rel) Class {
	switch rel {
	case topo.Customer:
		return ClassCustomer
	case topo.Peer:
		return ClassPeer
	default:
		return ClassProvider
	}
}

// Compact route-entry layout. Each AS's best route towards one destination
// packs into a single uint32:
//
//	bits  0–22  next-hop AS + 1 (0 = none; caps topologies at MaxASes)
//	bits 23–25  route class (ClassOrigin … ClassUnreachable)
//	bits 26–31  AS-path length 0–62; 63 is an overflow sentinel and the
//	            true length lives in the sorted overflow side table
//
// At 4 bytes × N per destination this is 43% of the dense 7-byte
// (class+hops+next) layout the package previously used — the difference
// between ~7.3 GB and ~12.9 GB for a full 44,340-destination table at
// paper scale. Unreachable entries are suppressed to the single canonical
// word ClassUnreachable<<classShift, so two tables agree byte-for-byte
// whenever they agree on reachability, class, hops, and next hop.
const (
	nextBits     = 23
	nextMask     = 1<<nextBits - 1
	classShift   = nextBits
	classMask    = 0x7
	hopsShift    = classShift + 3
	hopsSentinel = 63 // hops field value meaning "look in overflow"

	// MaxASes is the largest topology a Dest can index: next-hop+1 must
	// fit in the nextBits field.
	MaxASes = nextMask - 1

	unreachableEntry = uint32(ClassUnreachable) << classShift
)

// hopOverflow records the true path length of an AS whose hops exceed the
// 6-bit inline field. Internet AS paths are short (the paper's dataset
// averages ~4 hops), so this table is almost always empty.
type hopOverflow struct {
	as   int32
	hops int16
}

// Dest holds, for one destination AS, every AS's best route: its class,
// AS-path length (hops to the destination) and next-hop AS, packed one
// uint32 per AS (see the layout above). The packed array may live in a
// shared Arena when the Dest was produced by a bulk table build.
type Dest struct {
	dst      int32
	packed   []uint32
	overflow []hopOverflow // sorted by as; rarely non-empty
}

// Dst returns the destination AS index.
func (d *Dest) Dst() int { return int(d.dst) }

// cls is the internal class accessor.
func (d *Dest) cls(v int) Class { return Class(d.packed[v] >> classShift & classMask) }

// next32 is the internal next-hop accessor (-1 when none).
func (d *Dest) next32(v int) int32 { return int32(d.packed[v]&nextMask) - 1 }

// hops16 is the internal path-length accessor; only valid for reachable v.
func (d *Dest) hops16(v int) int16 {
	h := int16(d.packed[v] >> hopsShift)
	if h == hopsSentinel {
		return d.overflowHops(v)
	}
	return h
}

func (d *Dest) overflowHops(v int) int16 {
	i := sort.Search(len(d.overflow), func(i int) bool { return d.overflow[i].as >= int32(v) })
	return d.overflow[i].hops
}

// Reachable reports whether v has any route to the destination.
func (d *Dest) Reachable(v int) bool { return d.cls(v) != ClassUnreachable }

// Class returns the class of v's best route.
func (d *Dest) Class(v int) Class { return d.cls(v) }

// Hops returns the AS-path length of v's best route (0 at the destination).
// It returns -1 when unreachable.
func (d *Dest) Hops(v int) int {
	if d.cls(v) == ClassUnreachable {
		return -1
	}
	return int(d.hops16(v))
}

// NextHop returns the next-hop AS on v's best route, or -1.
func (d *Dest) NextHop(v int) int { return int(d.next32(v)) }

// ASPath returns the default AS-level path [src, ..., dst] following best
// routes, or nil when src has no route.
func (d *Dest) ASPath(src int) []int { return d.ASPathInto(src, nil) }

// ASPathInto is ASPath building into buf[:0] (growing it if needed).
// Call sites that walk a path per flow or per epoch reuse one buffer
// instead of allocating a fresh slice each time. The result aliases buf's
// backing array when it fits.
func (d *Dest) ASPathInto(src int, buf []int) []int {
	if !d.Reachable(src) {
		return nil
	}
	path := buf[:0]
	v := src
	for {
		path = append(path, v)
		if int32(v) == d.dst {
			return path
		}
		v = int(d.next32(v))
	}
}

// onBestPath reports whether v appears on the best path starting at n.
// Used for the standard AS-path loop filter when building the RIB.
func (d *Dest) onBestPath(n, v int) bool {
	for x := n; ; x = int(d.next32(x)) {
		if x == v {
			return true
		}
		if int32(x) == d.dst {
			return false
		}
	}
}

// computeScratch is the dense working state the three-phase algorithm runs
// on before the result is packed. Pooled: at paper scale each instance is
// ~7 bytes × 44,340 and Compute runs once per destination per recompute,
// so per-call allocation would dominate the incremental path.
type computeScratch struct {
	class []Class
	hops  []int16
	next  []int32
}

var scratchPool = sync.Pool{New: func() any { return new(computeScratch) }}

func getScratch(n int) *computeScratch {
	sc := scratchPool.Get().(*computeScratch)
	if cap(sc.class) < n {
		sc.class = make([]Class, n)
		sc.hops = make([]int16, n)
		sc.next = make([]int32, n)
	}
	sc.class = sc.class[:n]
	sc.hops = sc.hops[:n]
	sc.next = sc.next[:n]
	return sc
}

// pack converts the dense scratch into the compact representation,
// allocating the packed array from a (or the heap when a is nil).
func (sc *computeScratch) pack(dst int32, a *Arena) *Dest {
	d := &Dest{dst: dst, packed: a.alloc(len(sc.class))}
	for v, c := range sc.class {
		if c == ClassUnreachable {
			d.packed[v] = unreachableEntry
			continue
		}
		h := sc.hops[v]
		field := uint32(h)
		if h >= hopsSentinel {
			field = hopsSentinel
			d.overflow = append(d.overflow, hopOverflow{as: int32(v), hops: h})
		}
		d.packed[v] = field<<hopsShift | uint32(c)<<classShift | uint32(sc.next[v]+1)
	}
	return d
}

// Compute derives every AS's best route towards dst with the three-phase
// algorithm (customer routes propagate up, peer routes cross once, provider
// routes propagate down). The result is deterministic.
func Compute(g *topo.Graph, dst int) *Dest { return ComputeArena(g, dst, nil) }

// ComputeArena is Compute allocating the result's packed array from a;
// a nil arena allocates from the heap. Bulk table builds pass a shared
// Arena so a 44k-destination table is a few thousand slab allocations
// instead of 44k individually GC-tracked arrays.
func ComputeArena(g *topo.Graph, dst int, a *Arena) *Dest {
	n := g.N()
	if n > MaxASes {
		panic(fmt.Sprintf("bgp: topology has %d ASes, exceeding the packed-entry limit of %d", n, MaxASes))
	}
	sc := getScratch(n)
	defer scratchPool.Put(sc)
	for i := range sc.class {
		sc.class[i] = ClassUnreachable
		sc.next[i] = -1
	}
	sc.class[dst] = ClassOrigin
	sc.hops[dst] = 0
	sc.next[dst] = -1

	// Phase 1: customer routes, BFS "uphill" over customer->provider edges,
	// level-by-level so the lowest-next-hop tie-break is exact.
	cur := []int32{int32(dst)}
	level := int16(0)
	for len(cur) > 0 {
		level++
		var nextLevel []int32
		for _, c := range cur {
			for _, nb := range g.Neighbors(int(c)) {
				if nb.Rel != topo.Provider {
					continue // only c's providers learn c's customer route
				}
				p := nb.AS
				switch {
				case sc.class[p] == ClassUnreachable:
					sc.class[p] = ClassCustomer
					sc.hops[p] = level
					sc.next[p] = c
					nextLevel = append(nextLevel, p)
				case sc.class[p] == ClassCustomer && sc.hops[p] == level && c < sc.next[p]:
					sc.next[p] = c // same length: lowest next-hop AS wins
				}
			}
		}
		cur = nextLevel
	}

	// Phase 2: peer routes. An AS with no customer route takes the best
	// customer (or origin) route offered by a peer.
	for v := 0; v < n; v++ {
		if sc.class[v] != ClassUnreachable {
			continue
		}
		bestHops := int16(-1)
		bestPeer := int32(-1)
		for _, nb := range g.Neighbors(v) {
			if nb.Rel != topo.Peer {
				continue
			}
			u := nb.AS
			if sc.class[u] != ClassOrigin && sc.class[u] != ClassCustomer {
				continue // peers only export customer routes
			}
			h := sc.hops[u] + 1
			if bestPeer < 0 || h < bestHops || (h == bestHops && u < bestPeer) {
				bestHops, bestPeer = h, u
			}
		}
		if bestPeer >= 0 {
			sc.class[v] = ClassPeer
			sc.hops[v] = bestHops
			sc.next[v] = bestPeer
		}
	}

	// Phase 3: provider routes, propagated "downhill" in increasing path
	// length with a bucket queue (providers export their best route —
	// whatever its class — to customers).
	maxHops := 0
	buckets := make([][]int32, 1, 16)
	push := func(v int32, h int) {
		for h >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[h] = append(buckets[h], v)
		if h > maxHops {
			maxHops = h
		}
	}
	for v := 0; v < n; v++ {
		if sc.class[v] != ClassUnreachable {
			push(int32(v), int(sc.hops[v]))
		}
	}
	for h := 0; h <= maxHops; h++ {
		for _, x := range buckets[h] {
			if int(sc.hops[x]) != h {
				continue // stale tentative entry superseded by a shorter route
			}
			for _, nb := range g.Neighbors(int(x)) {
				if nb.Rel != topo.Customer {
					continue // x exports downhill to customers only
				}
				c := nb.AS
				switch {
				case sc.class[c] == ClassUnreachable:
					sc.class[c] = ClassProvider
					sc.hops[c] = int16(h + 1)
					sc.next[c] = x
					push(c, h+1)
				case sc.class[c] == ClassProvider && int(sc.hops[c]) == h+1 && x < sc.next[c]:
					sc.next[c] = x
				}
			}
		}
	}
	return sc.pack(int32(dst), a)
}

// ComputeAll computes Dest tables for every destination in dsts, in
// parallel. Results are positionally aligned with dsts.
func ComputeAll(g *topo.Graph, dsts []int, workers int) []*Dest {
	return computeAllArena(g, dsts, workers, nil)
}

func computeAllArena(g *topo.Graph, dsts []int, workers int, a *Arena) []*Dest {
	return parallel.Map(len(dsts), workers, func(i int) *Dest {
		return ComputeArena(g, dsts[i], a)
	})
}
