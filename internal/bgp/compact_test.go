package bgp

// Representation-equivalence suite: the packed 4-byte route entries must be
// observationally identical to the dense class/hops/next arrays they
// replaced. denseDest + computeDenseOracle below are a verbatim copy of the
// old representation and algorithm, kept test-only as the differential
// oracle; every accessor is compared for every AS across topologies and
// link-event schedules, and FuzzCompactDest drives the same comparison from
// fuzzed inputs.

import (
	"math/rand"
	"testing"

	"repro/internal/topo"
)

// denseDest is the pre-compaction representation: one Class, int16 and
// int32 per AS.
type denseDest struct {
	dst   int32
	class []Class
	hops  []int16
	next  []int32 // -1 when unreachable
}

// computeDenseOracle is the original three-phase Compute, unchanged, over
// the dense representation.
func computeDenseOracle(g *topo.Graph, dst int) *denseDest {
	n := g.N()
	d := &denseDest{
		dst:   int32(dst),
		class: make([]Class, n),
		hops:  make([]int16, n),
		next:  make([]int32, n),
	}
	for i := range d.class {
		d.class[i] = ClassUnreachable
		d.next[i] = -1
	}
	d.class[dst] = ClassOrigin

	cur := []int32{int32(dst)}
	level := int16(0)
	for len(cur) > 0 {
		level++
		var nextLevel []int32
		for _, c := range cur {
			for _, nb := range g.Neighbors(int(c)) {
				if nb.Rel != topo.Provider {
					continue
				}
				p := nb.AS
				switch {
				case d.class[p] == ClassUnreachable:
					d.class[p] = ClassCustomer
					d.hops[p] = level
					d.next[p] = c
					nextLevel = append(nextLevel, p)
				case d.class[p] == ClassCustomer && d.hops[p] == level && c < d.next[p]:
					d.next[p] = c
				}
			}
		}
		cur = nextLevel
	}

	for v := 0; v < n; v++ {
		if d.class[v] != ClassUnreachable {
			continue
		}
		bestHops := int16(-1)
		bestPeer := int32(-1)
		for _, nb := range g.Neighbors(v) {
			if nb.Rel != topo.Peer {
				continue
			}
			u := nb.AS
			if d.class[u] != ClassOrigin && d.class[u] != ClassCustomer {
				continue
			}
			h := d.hops[u] + 1
			if bestPeer < 0 || h < bestHops || (h == bestHops && u < bestPeer) {
				bestHops, bestPeer = h, u
			}
		}
		if bestPeer >= 0 {
			d.class[v] = ClassPeer
			d.hops[v] = bestHops
			d.next[v] = bestPeer
		}
	}

	maxHops := 0
	buckets := make([][]int32, 1, 16)
	push := func(v int32, h int) {
		for h >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[h] = append(buckets[h], v)
		if h > maxHops {
			maxHops = h
		}
	}
	for v := 0; v < n; v++ {
		if d.class[v] != ClassUnreachable {
			push(int32(v), int(d.hops[v]))
		}
	}
	for h := 0; h <= maxHops; h++ {
		for _, x := range buckets[h] {
			if int(d.hops[x]) != h {
				continue
			}
			for _, nb := range g.Neighbors(int(x)) {
				if nb.Rel != topo.Customer {
					continue
				}
				c := nb.AS
				switch {
				case d.class[c] == ClassUnreachable:
					d.class[c] = ClassProvider
					d.hops[c] = int16(h + 1)
					d.next[c] = x
					push(c, h+1)
				case d.class[c] == ClassProvider && int(d.hops[c]) == h+1 && x < d.next[c]:
					d.next[c] = x
				}
			}
		}
	}
	return d
}

// requireMatchesDense compares every accessor of the compact table against
// the dense oracle at every AS.
func requireMatchesDense(t *testing.T, g *topo.Graph, got *Dest, want *denseDest) {
	t.Helper()
	if got.dst != want.dst {
		t.Fatalf("dst = %d, want %d", got.dst, want.dst)
	}
	for v := 0; v < g.N(); v++ {
		if got.Class(v) != want.class[v] {
			t.Fatalf("dst %d: Class(%d) = %v, dense says %v", got.dst, v, got.Class(v), want.class[v])
		}
		if got.Reachable(v) != (want.class[v] != ClassUnreachable) {
			t.Fatalf("dst %d: Reachable(%d) mismatch", got.dst, v)
		}
		if want.class[v] == ClassUnreachable {
			if got.Hops(v) != -1 {
				t.Fatalf("dst %d: Hops(%d) = %d for unreachable AS, want -1", got.dst, v, got.Hops(v))
			}
			// The compact form suppresses unreachable entries entirely; the
			// dense form may carry a stale next pointer there. NextHop is
			// only defined for reachable ASes, but the packed word must be
			// the canonical sentinel so Equal stays a byte comparison.
			if got.packed[v] != unreachableEntry {
				t.Fatalf("dst %d: unreachable AS %d packed as %#x, want canonical %#x",
					got.dst, v, got.packed[v], unreachableEntry)
			}
			continue
		}
		if got.Hops(v) != int(want.hops[v]) {
			t.Fatalf("dst %d: Hops(%d) = %d, dense says %d", got.dst, v, got.Hops(v), want.hops[v])
		}
		if got.NextHop(v) != int(want.next[v]) {
			t.Fatalf("dst %d: NextHop(%d) = %d, dense says %d", got.dst, v, got.NextHop(v), want.next[v])
		}
	}
}

// TestCompactMatchesDense runs the differential comparison over generated
// topologies, for every destination, before and after link events.
func TestCompactMatchesDense(t *testing.T) {
	for _, n := range []int{20, 60, 150} {
		g, err := topo.Generate(topo.GenConfig{N: n, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		for dst := 0; dst < g.N(); dst++ {
			requireMatchesDense(t, g, Compute(g, dst), computeDenseOracle(g, dst))
		}
		// Knock out the busiest AS's first link and compare again on the
		// degraded graph.
		hub := 0
		for v := 1; v < g.N(); v++ {
			if g.Degree(v) > g.Degree(hub) {
				hub = v
			}
		}
		cut := topo.LinkRef{A: hub, B: int(g.Neighbors(hub)[0].AS)}
		cutG, err := topo.RemoveLinks(g, []topo.LinkRef{cut})
		if err != nil {
			t.Fatal(err)
		}
		for dst := 0; dst < cutG.N(); dst += 7 {
			requireMatchesDense(t, cutG, Compute(cutG, dst), computeDenseOracle(cutG, dst))
		}
	}
}

// TestCompactArenaMatchesHeap: arena-backed and heap-backed computes of the
// same destination must be Equal (the arena changes allocation, nothing
// else).
func TestCompactArenaMatchesHeap(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for dst := 0; dst < g.N(); dst += 3 {
		if !ComputeArena(g, dst, a).Equal(Compute(g, dst)) {
			t.Fatalf("arena-backed table for dst %d differs from heap-backed", dst)
		}
	}
	st := a.Stats()
	if st.Slabs == 0 || st.AllocatedBytes == 0 || st.RetainedBytes < st.AllocatedBytes {
		t.Fatalf("arena stats implausible: %+v", st)
	}
}

// TestCompactHopOverflow builds a provider chain longer than the 6-bit
// inline hops field (62) and checks the overflow side table takes over.
func TestCompactHopOverflow(t *testing.T) {
	const chain = 80 // AS i+1 is provider of AS i; hops(dst=0) at AS v is v
	b := topo.NewBuilder(chain)
	for i := 0; i < chain-1; i++ {
		b.AddPC(i+1, i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if len(d.overflow) == 0 {
		t.Fatal("expected hop-overflow entries on an 80-AS provider chain")
	}
	want := computeDenseOracle(g, 0)
	requireMatchesDense(t, g, d, want)
	for v := hopsSentinel; v < chain; v++ {
		if d.Hops(v) != v {
			t.Fatalf("Hops(%d) = %d, want %d", v, d.Hops(v), v)
		}
	}
	// And in the other direction (customer routes uphill at the far end).
	d2 := Compute(g, chain-1)
	requireMatchesDense(t, g, d2, computeDenseOracle(g, chain-1))
}

func TestASPathIntoReusesBuffer(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	buf := make([]int, 0, g.N())
	for src := 0; src < g.N(); src++ {
		want := d.ASPath(src)
		got := d.ASPathInto(src, buf)
		if len(got) != len(want) {
			t.Fatalf("ASPathInto(%d) len %d, ASPath len %d", src, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ASPathInto(%d)[%d] = %d, want %d", src, i, got[i], want[i])
			}
		}
		if want != nil && cap(buf) >= len(want) && &got[0] != &buf[:1][0] {
			t.Fatalf("ASPathInto(%d) did not reuse the provided buffer", src)
		}
	}
}

// FuzzCompactDest fuzzes topology seeds and link-event schedules: after
// every event, a sample of destinations recomputed compactly must match
// the dense oracle accessor-for-accessor.
func FuzzCompactDest(f *testing.F) {
	f.Add(int64(1), []byte{0, 3, 7})
	f.Add(int64(42), []byte{1, 1, 2, 2})
	f.Add(int64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		g, err := topo.Generate(topo.GenConfig{N: 40, Seed: seed})
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		curG := g
		check := func() {
			for i := 0; i < 4; i++ {
				dst := rng.Intn(curG.N())
				requireMatchesDense(t, curG, Compute(curG, dst), computeDenseOracle(curG, dst))
			}
		}
		check()
		if len(ops) > 12 {
			ops = ops[:12] // bound schedule length
		}
		var cuts []topo.LinkRef
		for _, op := range ops {
			v := int(op) % curG.N()
			if curG.Degree(v) == 0 {
				continue
			}
			nb := curG.Neighbors(v)[int(op)%curG.Degree(v)]
			cuts = append(cuts, topo.LinkRef{A: v, B: int(nb.AS)})
			curG, err = topo.RemoveLinks(g, cuts)
			if err != nil {
				t.Fatal(err)
			}
			check()
		}
	})
}
