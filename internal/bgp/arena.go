package bgp

import "sync"

// arenaSlabWords sizes each slab at 4 MiB — roughly 23 packed arrays per
// slab at paper scale (44,340 ASes ≈ 173 KiB each), small enough that a
// modest table doesn't strand much slab tail.
const arenaSlabWords = 1 << 20

// Arena is a bump allocator for packed route entries. A bulk table build
// (NewTable) allocates every destination's packed array from one Arena, so
// the table is a handful of large slabs instead of tens of thousands of
// individually GC-tracked slices — at 44,340 destinations that removes
// ~44k pointers from every GC mark phase and makes the whole table's
// retention obvious in MemStats.
//
// The arena never frees: it is only for initial full computes whose
// results live as long as the Table. Incremental recomputes allocate
// plain slices (a nil *Arena) so replaced tables can be collected —
// routing churn through an arena would leak every superseded array.
//
// The zero of *Arena (nil) is valid and falls back to the heap. Arena is
// safe for concurrent alloc from parallel workers.
type Arena struct {
	mu    sync.Mutex
	slabs int
	cur   []uint32
	used  int64 // words handed out
	total int64 // words reserved in slabs
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// alloc returns a zeroed []uint32 of length n, carved from the current
// slab when it fits. Oversized requests get a dedicated slab.
func (a *Arena) alloc(n int) []uint32 {
	if a == nil {
		return make([]uint32, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > len(a.cur) {
		words := arenaSlabWords
		if n > words {
			words = n
		}
		a.cur = make([]uint32, words)
		a.slabs++
		a.total += int64(words)
	}
	out := a.cur[:n:n]
	a.cur = a.cur[n:]
	a.used += int64(n)
	return out
}

// ArenaStats accounts an arena's footprint.
type ArenaStats struct {
	// Slabs is the number of slabs reserved.
	Slabs int
	// AllocatedBytes is the total handed out to packed arrays.
	AllocatedBytes int64
	// RetainedBytes is the total reserved, including slab tails not yet
	// (or never to be) handed out.
	RetainedBytes int64
}

// Stats returns the arena's current accounting. Safe on a nil arena.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{
		Slabs:          a.slabs,
		AllocatedBytes: a.used * 4,
		RetainedBytes:  a.total * 4,
	}
}
