package bgp

import (
	"math"

	"repro/internal/topo"
)

// MaxPaths is the saturation ceiling for path counting. Dense topologies
// can have astronomically many valley-free paths; counts clamp here.
const MaxPaths uint64 = math.MaxUint64 / 4

func satAdd(a, b uint64) uint64 {
	if a > MaxPaths-b {
		return MaxPaths
	}
	return a + b
}

// PathCounter counts the distinct AS-level forwarding paths available from
// a source towards one destination when a subset of ASes is MIFO-capable
// (Fig. 7's "available paths per pair").
//
// A path is counted when every hop satisfies the data-plane valley-free
// check (Eq. 3 of the paper): AS v may forward a packet received from
// upstream UN to downstream DN iff UN is v's customer or DN is v's
// customer. MIFO-capable ASes may use any RIB entry as the next hop;
// legacy ASes follow only their default route. The valley-free constraint
// makes the (AS, entry-bit) state graph acyclic — the same argument as the
// paper's loop-freedom theorem — so counting is a linear-time DP.
type PathCounter struct {
	g       *topo.Graph
	d       *Dest
	capable []bool // nil means every AS is capable

	memo  []uint64 // count per state; states are 2*v + bit
	state []uint8  // 0 = unvisited, 1 = on stack, 2 = done
}

// NewPathCounter builds a counter for destination d. capable[v] marks
// MIFO-capable ASes; pass nil for full deployment.
func NewPathCounter(g *topo.Graph, d *Dest, capable []bool) *PathCounter {
	return &PathCounter{
		g:       g,
		d:       d,
		capable: capable,
		memo:    make([]uint64, 2*g.N()),
		state:   make([]uint8, 2*g.N()),
	}
}

func (pc *PathCounter) isCapable(v int) bool {
	return pc.capable == nil || pc.capable[v]
}

// Count returns the number of distinct forwarding paths from src to the
// destination, saturating at MaxPaths. The source imposes no entry
// constraint (it originates the traffic), matching the paper's model where
// the tag is applied at the AS the packet *enters*.
func (pc *PathCounter) Count(src int) uint64 {
	if src == int(pc.d.dst) {
		return 1
	}
	return pc.count(src, 1)
}

// count returns the number of valley-free forwarding paths from state
// (v, bit) to the destination. bit==1 means the packet entered v from a
// customer (or originated at v).
func (pc *PathCounter) count(v, bit int) uint64 {
	if v == int(pc.d.dst) {
		return 1
	}
	s := 2*v + bit
	switch pc.state[s] {
	case 2:
		return pc.memo[s]
	case 1:
		// A cycle would contradict the loop-freedom theorem; treat the
		// re-entry as contributing no paths. Exercised only if the
		// topology violates Gao–Rexford assumptions.
		return 0
	}
	pc.state[s] = 1
	var total uint64
	if pc.isCapable(v) {
		for _, alt := range RIB(pc.g, pc.d, v) {
			total = satAdd(total, pc.countVia(v, bit, alt))
		}
	} else if next := pc.d.NextHop(v); next >= 0 {
		rel, _ := pc.g.Rel(v, next)
		total = pc.countVia(v, bit, Alt{Via: int32(next), Class: classOf(rel)})
	}
	pc.memo[s] = total
	pc.state[s] = 2
	return total
}

// countVia applies the Eq. 3 check for forwarding from v to alt.Via and,
// if allowed, recurses with the next AS's entry bit.
func (pc *PathCounter) countVia(v, bit int, alt Alt) uint64 {
	if bit != 1 && alt.Class != ClassCustomer {
		return 0 // would form a valley: entered from peer/provider, exiting to non-customer
	}
	// The next AS sees v as a customer iff alt.Via is v's provider.
	nextBit := 0
	if alt.Class == ClassProvider {
		nextBit = 1
	}
	return pc.count(int(alt.Via), nextBit)
}

// CountForwardingPaths is a convenience wrapper: the number of forwarding
// paths from src to d's destination under the given deployment.
func CountForwardingPaths(g *topo.Graph, d *Dest, src int, capable []bool) uint64 {
	return NewPathCounter(g, d, capable).Count(src)
}
