package bgp

import (
	"sort"
	"unsafe"

	"repro/internal/obs/span"
	"repro/internal/parallel"
	"repro/internal/topo"
)

// TableStats counts the route computation work a Table has performed. The
// split between full and incremental computes is the quantity the
// resilience experiment reports: a from-scratch rebuild recomputes every
// destination on every topology change, while the incremental path only
// touches destinations whose route tree actually traverses the changed
// link.
type TableStats struct {
	// FullComputes counts per-destination three-phase runs triggered by
	// table construction or destination addition.
	FullComputes int64
	// IncrementalComputes counts per-destination recomputes triggered by
	// link up/down events (only dirty destinations are re-run).
	IncrementalComputes int64
	// CleanSkipped counts destinations a link event left untouched because
	// the dirty-set derivation proved their tables could not change.
	CleanSkipped int64
	// LinkEvents counts LinkDown/LinkUp calls that changed the topology.
	LinkEvents int64
}

// Add accumulates o into s.
func (s *TableStats) Add(o TableStats) {
	s.FullComputes += o.FullComputes
	s.IncrementalComputes += o.IncrementalComputes
	s.CleanSkipped += o.CleanSkipped
	s.LinkEvents += o.LinkEvents
}

// numShards splits the destination map; 64 keeps per-shard maps small at
// paper scale (~700 destinations each at 44k) and gives the parallel
// dirty-set derivation and install natural work units.
const numShards = 64

func shardOf(dst int) int { return dst & (numShards - 1) }

type tableShard struct {
	dests map[int32]*Dest
}

// Table owns the per-destination routing tables for one topology and keeps
// them current across link failures and recoveries with incremental
// recomputation: a link event re-runs the three-phase algorithm only for
// the destinations it can actually affect, derived from the stored
// next-hop pointers (see dirtyDown/dirtyUp). The incremental result is
// byte-identical to a from-scratch recompute — TestTableIncrementalMatchesFull
// and FuzzIncrementalTable enforce this.
//
// Destinations are sharded by dst & 63: link events derive their dirty
// sets shard-parallel and install recomputed tables shard-parallel, so the
// only sequential work per event is the recut and the sort of the (small)
// dirty list.
//
// A Table is not safe for concurrent use; callers that share one across
// goroutines (core.Deployment) serialize access themselves.
type Table struct {
	base    *topo.Graph // the intact topology
	cur     *topo.Graph // base minus failed links (== base when none)
	failed  map[topo.LinkRef]bool
	shards  [numShards]tableShard
	count   int
	workers int
	stats   TableStats
	spans   *span.Tracer
	arena   *Arena // backs the initial bulk build only; nil after Clone
}

// SetTracer attaches a span tracer: every subsequent link event emits a
// route_recompute span (with the event's endpoints and dirty count) and
// one dest_recompute child per recomputed destination, parented to the
// context the caller passes to LinkDownCtx/LinkUpCtx. A nil tracer (the
// default) is free.
func (t *Table) SetTracer(tr *span.Tracer) { t.spans = tr }

// NewTable computes tables for every destination in dsts over g, in
// parallel with the given worker bound (0 = all CPUs). The initial build
// allocates all packed arrays from one shared arena (see Arena).
func NewTable(g *topo.Graph, dsts []int, workers int) *Table {
	t := NewEmptyTable(g, workers)
	t.arena = NewArena()
	tables := computeAllArena(g, dsts, workers, t.arena)
	for _, d := range tables {
		t.install(d)
	}
	t.stats.FullComputes += int64(len(dsts))
	return t
}

// NewHeapTable is NewTable with per-destination heap allocation instead of
// the shared build arena: tables superseded by link events become
// collectable, so a long convergence workload's footprint tracks the live
// table rather than live + the retained initial build. Tables that are
// built once and then only queried should prefer NewTable.
func NewHeapTable(g *topo.Graph, dsts []int, workers int) *Table {
	t := NewEmptyTable(g, workers)
	for _, d := range computeAllArena(g, dsts, workers, nil) {
		t.install(d)
	}
	t.stats.FullComputes += int64(len(dsts))
	return t
}

// NewEmptyTable returns a Table over g with no destinations installed yet;
// populate it with Install or AddDest.
func NewEmptyTable(g *topo.Graph, workers int) *Table {
	t := &Table{
		base:    g,
		cur:     g,
		failed:  make(map[topo.LinkRef]bool),
		workers: workers,
	}
	for s := range t.shards {
		t.shards[s].dests = make(map[int32]*Dest)
	}
	return t
}

// Graph returns the current topology (the intact graph minus failed links).
func (t *Table) Graph() *topo.Graph { return t.cur }

// Dest returns the table for dst, or nil when dst is not installed.
func (t *Table) Dest(dst int) *Dest { return t.shards[shardOf(dst)].dests[int32(dst)] }

// Len returns the number of installed destinations.
func (t *Table) Len() int { return t.count }

// Dests returns the installed destination indices in ascending order.
func (t *Table) Dests() []int {
	out := make([]int, 0, t.count)
	for s := range t.shards {
		for dst := range t.shards[s].dests {
			out = append(out, int(dst))
		}
	}
	sort.Ints(out)
	return out
}

// All returns the installed tables in ascending destination order.
func (t *Table) All() []*Dest {
	dsts := t.Dests()
	out := make([]*Dest, len(dsts))
	for i, dst := range dsts {
		out[i] = t.Dest(dst)
	}
	return out
}

// install records d, tracking the destination count.
func (t *Table) install(d *Dest) {
	sh := &t.shards[shardOf(d.Dst())]
	if _, ok := sh.dests[d.dst]; !ok {
		t.count++
	}
	sh.dests[d.dst] = d
}

// Install records an externally computed table, replacing any previous one
// for the same destination. The caller is responsible for d matching the
// Table's current topology.
func (t *Table) Install(d *Dest) { t.install(d) }

// AddDest computes (on the current topology) and installs the table for a
// new destination, returning it. Installed destinations are recomputed in
// place. Late additions allocate from the heap, not the build arena: they
// may be recomputed and replaced by later link events, and arena memory is
// never reclaimed.
func (t *Table) AddDest(dst int) *Dest {
	d := Compute(t.cur, dst)
	t.install(d)
	t.stats.FullComputes++
	return d
}

// Stats returns the accumulated computation counters.
func (t *Table) Stats() TableStats { return t.stats }

// TableMemStats accounts a Table's routing-state footprint.
type TableMemStats struct {
	// Dests is the number of installed destinations.
	Dests int
	// Entries is the total packed route entries (Dests × N).
	Entries int64
	// PackedBytes is the size of all packed entry arrays.
	PackedBytes int64
	// OverflowBytes is the size of all hop-overflow side tables.
	OverflowBytes int64
	// BytesPerDest is (PackedBytes+OverflowBytes) / Dests.
	BytesPerDest float64
	// BytesPerEntry is (PackedBytes+OverflowBytes) / Entries.
	BytesPerEntry float64
	// ArenaRetainedBytes is what the build arena reserved, including slab
	// tails; zero for tables built destination-by-destination or cloned.
	ArenaRetainedBytes int64
}

// MemStats sums the footprint of every installed destination table.
func (t *Table) MemStats() TableMemStats {
	m := TableMemStats{Dests: t.count}
	for s := range t.shards {
		for _, d := range t.shards[s].dests {
			m.Entries += int64(len(d.packed))
			m.PackedBytes += int64(cap(d.packed)) * 4
			m.OverflowBytes += int64(cap(d.overflow)) * int64(unsafe.Sizeof(hopOverflow{}))
		}
	}
	if m.Dests > 0 {
		m.BytesPerDest = float64(m.PackedBytes+m.OverflowBytes) / float64(m.Dests)
	}
	if m.Entries > 0 {
		m.BytesPerEntry = float64(m.PackedBytes+m.OverflowBytes) / float64(m.Entries)
	}
	m.ArenaRetainedBytes = t.arena.Stats().RetainedBytes
	return m
}

// Clone returns a Table sharing the (immutable) per-destination tables and
// the topology state but with fresh counters: incremental work done on the
// clone does not disturb the original, which is how the simulator keeps an
// intact reference table while failures evolve a copy. The clone does not
// inherit the build arena — its recomputes allocate from the heap.
func (t *Table) Clone() *Table {
	c := &Table{
		base:    t.base,
		cur:     t.cur,
		failed:  make(map[topo.LinkRef]bool, len(t.failed)),
		count:   t.count,
		workers: t.workers,
		spans:   t.spans,
	}
	for r := range t.failed {
		c.failed[r] = true
	}
	for s := range t.shards {
		c.shards[s].dests = make(map[int32]*Dest, len(t.shards[s].dests))
		for dst, d := range t.shards[s].dests {
			c.shards[s].dests[dst] = d
		}
	}
	return c
}

// FailedLinks returns the number of currently failed links.
func (t *Table) FailedLinks() int { return len(t.failed) }

// LinkFailed reports whether the undirected link (a, b) is currently
// failed through this table.
func (t *Table) LinkFailed(a, b int) bool { return t.failed[normLinkRef(a, b)] }

// LinkDown removes the undirected link (a, b) and incrementally recomputes
// the affected destinations. It returns the number of destinations
// recomputed, and is a no-op (returning 0) when the link does not exist or
// is already down.
//
// Dirty-set derivation for a removal: deleting link (a, b) withdraws
// exactly two route offers — a's route as offered to b, and b's as offered
// to a. Every other AS's candidate set is unchanged, so the deterministic
// selection fixed point can only move if one of those two offers was
// actually selected, i.e. the destination's route tree traverses the link:
// next[a] == b or next[b] == a.
func (t *Table) LinkDown(a, b int) int {
	return t.LinkDownCtx(a, b, span.Context{})
}

// LinkDownCtx is LinkDown with a causal parent: the incremental
// recompute's spans are children of parent (typically a failure event's
// root span).
func (t *Table) LinkDownCtx(a, b int, parent span.Context) int {
	if !t.cur.HasLink(a, b) {
		return 0
	}
	sp := t.startRecompute(a, b, parent)
	dirty := t.dirtyDests(func(d *Dest) bool { return d.usesLink(a, b) })
	ref := normLinkRef(a, b)
	t.failed[ref] = true
	t.recut()
	t.recompute(dirty, sp.Context())
	sp.V = float64(len(dirty))
	sp.End()
	return len(dirty)
}

// LinkUp restores a previously failed link and incrementally recomputes
// the affected destinations. It returns the number of destinations
// recomputed, and is a no-op when the link was not failed through this
// Table.
//
// Dirty-set derivation for a restoration: adding link (a, b) introduces
// exactly two new route offers — a's route offered to b and b's offered to
// a. All other candidate sets are unchanged, so the fixed point moves only
// if one of the new offers beats (under the class / path-length / lowest
// next-hop order) the incumbent best route at its receiving end, after the
// valley-free export filter and the AS-path loop filter.
func (t *Table) LinkUp(a, b int) int {
	return t.LinkUpCtx(a, b, span.Context{})
}

// LinkUpCtx is LinkUp with a causal parent for the recompute's spans.
func (t *Table) LinkUpCtx(a, b int, parent span.Context) int {
	ref := normLinkRef(a, b)
	if !t.failed[ref] {
		return 0
	}
	sp := t.startRecompute(a, b, parent)
	delete(t.failed, ref)
	t.recut()
	// Relationship of each endpoint as seen from the other, on the restored
	// graph.
	relAB, ok := t.cur.Rel(a, b) // b's role from a's viewpoint
	if !ok {
		panic("bgp: LinkUp restored a link absent from the base graph")
	}
	relBA := relAB.Invert() // a's role from b's viewpoint
	// offerWins wants the announcer's role as seen from the receiver:
	// b announcing to a is classified by Rel(a, b), and vice versa.
	dirty := t.dirtyDests(func(d *Dest) bool {
		return offerWins(d, b, a, relAB) || offerWins(d, a, b, relBA)
	})
	t.recompute(dirty, sp.Context())
	sp.V = float64(len(dirty))
	sp.End()
	return len(dirty)
}

// dirtyDests scans every installed destination with affected, one parallel
// worker per shard, and returns the dirty destination indices (unsorted).
func (t *Table) dirtyDests(affected func(*Dest) bool) []int {
	perShard := parallel.Map(numShards, t.workers, func(s int) []int {
		var out []int
		for dst, d := range t.shards[s].dests {
			if affected(d) {
				out = append(out, int(dst))
			}
		}
		return out
	})
	var dirty []int
	for _, part := range perShard {
		dirty = append(dirty, part...)
	}
	return dirty
}

// startRecompute opens the route_recompute span shared by both link
// event directions (the span-name hygiene rule wants exactly one Start
// site per name).
func (t *Table) startRecompute(a, b int, parent span.Context) span.Span {
	sp := t.spans.Start("route_recompute", parent, -1)
	sp.A, sp.B = int64(a), int64(b)
	return sp
}

// usesLink reports whether the destination's route tree traverses the
// undirected link (a, b) — i.e. either endpoint's best route exits through
// the other.
func (d *Dest) usesLink(a, b int) bool {
	return int(d.next32(a)) == b || int(d.next32(b)) == a
}

// offerWins reports whether the route `from` would offer `to` across a
// restored direct link beats to's incumbent best route. rel is from's role
// as seen from to (so the offered route's class at to is classOf(rel)).
func offerWins(d *Dest, from, to int, rel topo.Rel) bool {
	fromClass := d.cls(from)
	if fromClass == ClassUnreachable {
		return false // nothing to offer
	}
	// Valley-free export at from: to its customers from exports everything;
	// to peers and providers only customer (or origin) routes. to is from's
	// customer iff from is to's provider.
	if rel != topo.Provider && fromClass != ClassOrigin && fromClass != ClassCustomer {
		return false
	}
	// Standard AS-path loop filter: from's route must not already contain to.
	if d.onBestPath(from, to) {
		return false
	}
	if d.cls(to) == ClassUnreachable {
		return true // to gains its first route
	}
	cand := Alt{Via: int32(from), Class: classOf(rel), Hops: d.hops16(from) + 1}
	cur := Alt{Via: d.next32(to), Class: d.cls(to), Hops: d.hops16(to)}
	return cand.Better(cur)
}

// recut rebuilds the current graph from the base graph minus the failed
// set.
func (t *Table) recut() {
	t.stats.LinkEvents++
	if len(t.failed) == 0 {
		t.cur = t.base
		return
	}
	refs := make([]topo.LinkRef, 0, len(t.failed))
	for r := range t.failed {
		refs = append(refs, r)
	}
	g, err := topo.RemoveLinks(t.base, refs)
	if err != nil {
		// Removal cannot introduce cycles or duplicates; an error here means
		// the base graph was invalid.
		panic("bgp: recut: " + err.Error())
	}
	t.cur = g
}

// recomputeChunkBytes bounds the packed-table bytes one recompute wave
// holds before installing: at paper scale a hub-link failure dirties
// thousands of destinations, and computing them all before installing any
// would double-buffer gigabytes of routes next to the tables they replace.
var recomputeChunkBytes = int64(128 << 20) // a var so tests can force multi-wave runs

// recompute re-runs the three-phase algorithm for the given destinations
// on the current graph, in parallel, emitting one dest_recompute span
// per destination under parent when a tracer is attached. Fresh tables
// allocate from the heap (not the build arena) so the superseded arrays
// can be collected, and are computed and installed in waves sized by
// recomputeChunkBytes — the transient footprint is one wave, not the whole
// dirty set. Installation fans out across shards in parallel; workers
// never touch the same shard map concurrently.
func (t *Table) recompute(dirty []int, parent span.Context) {
	t.stats.IncrementalComputes += int64(len(dirty))
	t.stats.CleanSkipped += int64(t.count - len(dirty))
	if len(dirty) == 0 {
		return
	}
	sort.Ints(dirty) // deterministic work order
	chunk := int(recomputeChunkBytes / (4 * int64(t.cur.N())))
	if chunk < 64 {
		chunk = 64
	}
	byShard := make([][]*Dest, numShards)
	for lo := 0; lo < len(dirty); lo += chunk {
		hi := lo + chunk
		if hi > len(dirty) {
			hi = len(dirty)
		}
		wave := dirty[lo:hi]
		fresh := parallel.Map(len(wave), t.workers, func(i int) *Dest {
			ds := t.spans.Start("dest_recompute", parent, int32(wave[i]))
			d := Compute(t.cur, wave[i])
			ds.End()
			return d
		})
		for s := range byShard {
			byShard[s] = byShard[s][:0]
		}
		for _, d := range fresh {
			s := shardOf(d.Dst())
			byShard[s] = append(byShard[s], d)
		}
		parallel.ForEach(numShards, t.workers, func(s int) {
			for _, d := range byShard[s] {
				t.shards[s].dests[d.dst] = d // replace-only: count is unchanged
			}
		})
	}
}

// Equal reports whether two tables for the same destination are
// byte-identical: same packed words and overflow entries, hence same
// class, path length, and next hop at every AS (packing is canonical —
// unreachable entries collapse to one sentinel word). It is the
// differential-testing oracle for incremental recomputation.
func (d *Dest) Equal(o *Dest) bool {
	if d.dst != o.dst || len(d.packed) != len(o.packed) || len(d.overflow) != len(o.overflow) {
		return false
	}
	for i := range d.packed {
		if d.packed[i] != o.packed[i] {
			return false
		}
	}
	for i := range d.overflow {
		if d.overflow[i] != o.overflow[i] {
			return false
		}
	}
	return true
}

func normLinkRef(a, b int) topo.LinkRef {
	if a > b {
		a, b = b, a
	}
	return topo.LinkRef{A: a, B: b}
}
