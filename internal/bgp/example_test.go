package bgp_test

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/topo"
)

// Compute routes towards one destination and read the default path plus
// the multi-path RIB MIFO mines for alternatives.
func ExampleCompute() {
	// AS 0 is a customer of 1, 2, 3; the latter peer in a triangle.
	g, _ := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	table := bgp.Compute(g, 0)

	fmt.Println("default:", table.ASPath(1), table.Class(1))
	for _, alt := range bgp.RIB(g, table, 1)[1:] {
		fmt.Printf("alt via %d (%s, %d hops)\n", alt.Via, alt.Class, alt.Hops)
	}
	// Output:
	// default: [1 0] customer
	// alt via 2 (peer, 2 hops)
	// alt via 3 (peer, 2 hops)
}

// Count the forwarding paths the deployment makes available (Fig. 7's
// quantity for one pair).
func ExampleCountForwardingPaths() {
	g, _ := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	table := bgp.Compute(g, 0)

	full := bgp.CountForwardingPaths(g, table, 1, nil)
	none := bgp.CountForwardingPaths(g, table, 1, make([]bool, g.N()))
	fmt.Printf("MIFO everywhere: %d paths; plain BGP: %d\n", full, none)
	// Output: MIFO everywhere: 3 paths; plain BGP: 1
}
