package bgp

import (
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func TestCountFig2aFullDeployment(t *testing.T) {
	g := fig2a(t)
	d := Compute(g, 0)
	// From AS 1 toward AS 0: direct, via peer 2, via peer 3. The clockwise
	// "loop" paths (1->2->3->0 etc.) are blocked by the valley-free check:
	// after a peer hop the packet may only descend to a customer.
	if got := CountForwardingPaths(g, d, 1, nil); got != 3 {
		t.Errorf("paths from AS1 = %d, want 3", got)
	}
	// The destination itself trivially has one path.
	if got := CountForwardingPaths(g, d, 0, nil); got != 1 {
		t.Errorf("paths from dst = %d, want 1", got)
	}
}

func TestCountNoDeploymentIsSinglePath(t *testing.T) {
	g := fig2a(t)
	d := Compute(g, 0)
	capable := make([]bool, g.N()) // nobody deploys MIFO
	for src := 1; src <= 3; src++ {
		if got := CountForwardingPaths(g, d, src, capable); got != 1 {
			t.Errorf("src %d: %d paths under zero deployment, want 1 (default only)", src, got)
		}
	}
}

func TestCountUnreachable(t *testing.T) {
	b := topo.NewBuilder(3)
	b.AddPC(0, 1) // AS 2 isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 1)
	if got := CountForwardingPaths(g, d, 2, nil); got != 0 {
		t.Errorf("isolated src counted %d paths, want 0", got)
	}
}

func TestCountDiamond(t *testing.T) {
	// src 3 is a customer of 1 and 2, both customers of 0... inverted:
	// 1 and 2 are providers of 3 and customers of 0? We need src below,
	// dst above: dst 0 provides 1 and 2; 1 and 2 provide 3.
	// Uphill from 3: via 1 or via 2 — exactly 2 paths.
	b := topo.NewBuilder(4)
	b.AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPC(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if got := CountForwardingPaths(g, d, 3, nil); got != 2 {
		t.Errorf("diamond paths = %d, want 2", got)
	}
}

func TestCountValleyRejected(t *testing.T) {
	// 1 and 2 peer; dst 0 is customer of 1 and 2; src 3 is customer of 1.
	// Paths from 3: up to 1 then down to 0, or up to 1, across to peer 2,
	// down to 0. Both fine. But from 2's perspective entered via peer,
	// 2 may only descend — 2->1 (peer) is rejected, no infinite bouncing.
	b := topo.NewBuilder(4)
	b.AddPC(1, 0).AddPC(2, 0).AddPeer(1, 2).AddPC(1, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	if got := CountForwardingPaths(g, d, 3, nil); got != 2 {
		t.Errorf("paths = %d, want 2 (direct down + one peer crossing)", got)
	}
}

func TestCountMonotoneInDeployment(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 0)
	none := make([]bool, g.N())
	half := make([]bool, g.N())
	for v := range half {
		half[v] = v%2 == 0
	}
	for src := 1; src < g.N(); src += 17 {
		c0 := CountForwardingPaths(g, d, src, none)
		c1 := CountForwardingPaths(g, d, src, half)
		c2 := CountForwardingPaths(g, d, src, nil)
		if c0 > c1 || c1 > c2 {
			t.Fatalf("src %d: counts not monotone in deployment: %d, %d, %d", src, c0, c1, c2)
		}
		if c0 != 1 {
			t.Fatalf("src %d: default-only count = %d, want 1", src, c0)
		}
	}
}

func TestCountAtLeastRIBSizeAtSource(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(g, 7)
	for src := 0; src < g.N(); src += 11 {
		if src == 7 {
			continue
		}
		rib := len(RIB(g, d, src))
		got := CountForwardingPaths(g, d, src, nil)
		if got < uint64(rib) {
			t.Fatalf("src %d: %d paths < RIB size %d", src, got, rib)
		}
	}
}

func TestSatAdd(t *testing.T) {
	if got := satAdd(MaxPaths-1, 5); got != MaxPaths {
		t.Errorf("satAdd near ceiling = %d, want MaxPaths", got)
	}
	if got := satAdd(2, 3); got != 5 {
		t.Errorf("satAdd(2,3) = %d", got)
	}
}

// Property: the DP never hits a cycle (count terminates and the counter's
// cycle guard is never the only thing producing zero when reachable via the
// default path).
func TestQuickCountTerminatesPositive(t *testing.T) {
	f := func(seed int64) bool {
		g, err := topo.Generate(topo.GenConfig{N: 200, Seed: seed})
		if err != nil {
			return false
		}
		d := Compute(g, 3)
		for src := 0; src < g.N(); src += 23 {
			if src == 3 {
				continue
			}
			if !d.Reachable(src) {
				continue
			}
			if CountForwardingPaths(g, d, src, nil) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountPaths(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 2000, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	d := Compute(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := NewPathCounter(g, d, nil)
		pc.Count(1 + i%(g.N()-1))
	}
}
