// Package eventq provides a small binary-heap event queue used by the
// discrete-event simulators in this repository (internal/netsim and
// internal/testbed).
//
// Events are ordered by time; ties are broken by insertion sequence so that
// simulations are fully deterministic for a given seed.
package eventq

// Event is a scheduled callback. The payload is opaque to the queue.
type Event struct {
	// Time is the simulation time at which the event fires, in seconds.
	Time float64
	// Kind is an application-defined discriminator.
	Kind int
	// Data is an application-defined payload.
	Data any

	seq      uint64
	index    int
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Queue is a min-heap of events keyed by (Time, insertion order).
// The zero value is ready to use. Queue is not safe for concurrent use.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending (non-canceled) events still in the heap.
// Canceled events that have not yet been popped are included in the count of
// heap entries but are skipped by Pop; use Empty to test for live events.
func (q *Queue) Len() int { return len(q.heap) }

// Empty reports whether no live events remain.
func (q *Queue) Empty() bool {
	q.drainCanceled()
	return len(q.heap) == 0
}

// Push schedules an event at time t and returns a handle that can be used
// with Cancel.
func (q *Queue) Push(t float64, kind int, data any) *Event {
	e := &Event{Time: t, Kind: kind, Data: data, seq: q.seq}
	q.seq++
	q.heap = append(q.heap, e)
	e.index = len(q.heap) - 1
	q.up(e.index)
	return e
}

// Pop removes and returns the earliest live event, or nil if the queue is
// empty. Canceled events are discarded transparently.
func (q *Queue) Pop() *Event {
	for len(q.heap) > 0 {
		e := q.heap[0]
		q.remove(0)
		if !e.canceled {
			return e
		}
	}
	return nil
}

// Peek returns the earliest live event without removing it, or nil.
func (q *Queue) Peek() *Event {
	q.drainCanceled()
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Cancel marks an event as canceled. It is safe to cancel an event that has
// already fired or been canceled; those calls are no-ops.
func (q *Queue) Cancel(e *Event) {
	if e != nil {
		e.canceled = true
	}
}

func (q *Queue) drainCanceled() {
	for len(q.heap) > 0 && q.heap[0].canceled {
		q.remove(0)
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
}

func (q *Queue) remove(i int) {
	n := len(q.heap) - 1
	q.swap(i, n)
	q.heap[n].index = -1
	q.heap = q.heap[:n]
	if i < n {
		q.down(i)
		q.up(i)
	}
}
