package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrder(t *testing.T) {
	var q Queue
	times := []float64{5, 1, 3, 2, 4}
	for i, tm := range times {
		q.Push(tm, i, nil)
	}
	var got []float64
	for !q.Empty() {
		got = append(got, q.Pop().Time)
	}
	want := append([]float64(nil), times...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("pop %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(1.0, i, nil)
	}
	for i := 0; i < 10; i++ {
		e := q.Pop()
		if e.Kind != i {
			t.Fatalf("tie-broken pop %d has kind %d, want %d", i, e.Kind, i)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1, 1, nil)
	b := q.Push(2, 2, nil)
	c := q.Push(3, 3, nil)
	q.Cancel(b)
	if e := q.Pop(); e != a {
		t.Fatalf("first pop = %+v, want event a", e)
	}
	if e := q.Pop(); e != c {
		t.Fatalf("second pop = %+v, want event c (b canceled)", e)
	}
	if e := q.Pop(); e != nil {
		t.Fatalf("third pop = %+v, want nil", e)
	}
	// Double-cancel and cancel-after-pop are no-ops.
	q.Cancel(b)
	q.Cancel(a)
	q.Cancel(nil)
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("peek of empty queue should be nil")
	}
	a := q.Push(2, 0, nil)
	b := q.Push(1, 1, nil)
	if q.Peek() != b {
		t.Fatal("peek should return earliest event")
	}
	q.Cancel(b)
	if q.Peek() != a {
		t.Fatal("peek should skip canceled events")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d after draining canceled head, want 1", q.Len())
	}
}

func TestEmptyAfterAllCanceled(t *testing.T) {
	var q Queue
	events := make([]*Event, 5)
	for i := range events {
		events[i] = q.Push(float64(i), i, nil)
	}
	for _, e := range events {
		q.Cancel(e)
	}
	if !q.Empty() {
		t.Fatal("queue with only canceled events should be Empty")
	}
	if e := q.Pop(); e != nil {
		t.Fatalf("pop = %+v, want nil", e)
	}
}

// Property: for any sequence of times, popping yields a non-decreasing order.
func TestQuickSortedPops(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		for i, tm := range times {
			q.Push(tm, i, nil)
		}
		prev := math.Inf(-1)
		for !q.Empty() {
			e := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleaved push/pop/cancel never loses or duplicates a live event.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		live := map[*Event]bool{}
		for i := 0; i < int(n); i++ {
			switch rng.Intn(3) {
			case 0:
				e := q.Push(rng.Float64(), i, nil)
				live[e] = true
			case 1:
				if e := q.Pop(); e != nil {
					if !live[e] {
						return false // popped a dead or unknown event
					}
					delete(live, e)
				}
			case 2:
				for e := range live {
					q.Cancel(e)
					delete(live, e)
					break
				}
			}
		}
		count := 0
		for !q.Empty() {
			e := q.Pop()
			if !live[e] {
				return false
			}
			delete(live, e)
			count++
		}
		return len(live) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var q Queue
	for i := 0; i < 1024; i++ {
		q.Push(rng.Float64(), 0, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.Push(e.Time+rng.Float64(), 0, nil)
	}
}
