package topo

import (
	"testing"
)

// triangle builds the Fig. 2(a) topology: ASes 1, 2, 3 peer with each other,
// AS 0 is a customer of all three. Indices: 0=customer, 1..3 peers.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatalf("triangle build: %v", err)
	}
	return g
}

func TestRelInvert(t *testing.T) {
	if Customer.Invert() != Provider || Provider.Invert() != Customer || Peer.Invert() != Peer {
		t.Fatal("Invert is not an involution on {Customer, Peer, Provider}")
	}
}

func TestRelString(t *testing.T) {
	for r, want := range map[Rel]string{Customer: "customer", Peer: "peer", Provider: "provider"} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if Rel(9).String() != "Rel(9)" {
		t.Errorf("unknown rel String() = %q", Rel(9).String())
	}
}

func TestTriangleRelationships(t *testing.T) {
	g := triangle(t)
	if g.N() != 4 || g.Links() != 6 || g.PCLinks() != 3 || g.PeerLinks() != 3 {
		t.Fatalf("counts = n=%d links=%d pc=%d peer=%d", g.N(), g.Links(), g.PCLinks(), g.PeerLinks())
	}
	if r, ok := g.Rel(1, 0); !ok || r != Customer {
		t.Errorf("Rel(1,0) = %v,%v, want customer", r, ok)
	}
	if r, ok := g.Rel(0, 1); !ok || r != Provider {
		t.Errorf("Rel(0,1) = %v,%v, want provider", r, ok)
	}
	if r, ok := g.Rel(2, 3); !ok || r != Peer {
		t.Errorf("Rel(2,3) = %v,%v, want peer", r, ok)
	}
	if _, ok := g.Rel(0, 0); ok {
		t.Error("self relationship should not exist")
	}
	if !g.IsCustomer(1, 0) || g.IsCustomer(0, 1) {
		t.Error("IsCustomer direction wrong")
	}
	if !g.IsStub(0) || g.IsStub(1) {
		t.Error("stub classification wrong")
	}
	if g.CustomerCount(1) != 1 || g.CustomerCount(0) != 0 {
		t.Error("CustomerCount wrong")
	}
	if g.TransitNeighborCount(0) != 3 {
		t.Errorf("TransitNeighborCount(0) = %d, want 3", g.TransitNeighborCount(0))
	}
	if g.TransitNeighborCount(1) != 2 {
		t.Errorf("TransitNeighborCount(1) = %d, want 2 (two peers)", g.TransitNeighborCount(1))
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(2).AddPC(0, 0).Build(); err == nil {
		t.Error("self link must fail")
	}
	if _, err := NewBuilder(2).AddPC(0, 1).AddPeer(0, 1).Build(); err == nil {
		t.Error("duplicate link must fail")
	}
	if _, err := NewBuilder(2).AddPC(0, 5).Build(); err == nil {
		t.Error("out-of-range AS must fail")
	}
	if _, err := NewBuilder(3).AddPC(0, 1).AddPC(1, 2).AddPC(2, 0).Build(); err == nil {
		t.Error("provider-customer cycle must fail")
	}
	// Errors are sticky: later valid calls don't clear them.
	b := NewBuilder(3).AddPC(0, 0)
	b.AddPC(0, 1)
	if _, err := b.Build(); err == nil {
		t.Error("sticky error lost")
	}
}

func TestPCDiamondIsAcyclic(t *testing.T) {
	// 0 provides 1 and 2; both provide 3. A DAG, must build fine.
	g, err := NewBuilder(4).AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPC(2, 3).Build()
	if err != nil {
		t.Fatalf("diamond build: %v", err)
	}
	if g.PCLinks() != 4 {
		t.Errorf("PCLinks = %d, want 4", g.PCLinks())
	}
}

func TestConnected(t *testing.T) {
	g := triangle(t)
	if !g.Connected() {
		t.Error("triangle should be connected")
	}
	g2, err := NewBuilder(4).AddPC(0, 1).AddPC(2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g2.Connected() {
		t.Error("two components should not be connected")
	}
	empty, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Connected() {
		t.Error("empty graph is trivially connected")
	}
}

func TestStats(t *testing.T) {
	g := triangle(t)
	s := g.Stats()
	if s.Nodes != 4 || s.Links != 6 || s.PCLinks != 3 || s.PeerLinks != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 3.0 {
		t.Errorf("avg degree = %v, want 3", s.AvgDegree)
	}
	if s.MaxDegree != 3 {
		t.Errorf("max degree = %v, want 3", s.MaxDegree)
	}
	if s.Stubs != 1 {
		t.Errorf("stubs = %d, want 1", s.Stubs)
	}
	if s.MultiHomed != 4 {
		t.Errorf("multi-homed = %d, want 4", s.MultiHomed)
	}
	if s.PeerFraction != 0.5 {
		t.Errorf("peer fraction = %v, want 0.5", s.PeerFraction)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, err := NewBuilder(5).AddPC(4, 0).AddPC(2, 0).AddPC(1, 0).AddPeer(0, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	for _, nb := range g.Neighbors(0) {
		if nb.AS <= prev {
			t.Fatalf("neighbors not sorted: %v", g.Neighbors(0))
		}
		prev = nb.AS
	}
	if g.Degree(0) != 4 {
		t.Errorf("degree = %d, want 4", g.Degree(0))
	}
}
