package topo

import (
	"testing"
	"testing/quick"
)

func TestGenerateBasicInvariants(t *testing.T) {
	g, err := Generate(GenConfig{N: 2000, Seed: 42})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if g.N() != 2000 {
		t.Fatalf("N = %d, want 2000", g.N())
	}
	if !g.Connected() {
		t.Fatal("generated topology must be connected")
	}
	s := g.Stats()
	if s.AvgDegree < 2 || s.AvgDegree > 12 {
		t.Errorf("avg degree = %v, outside sane Internet-like band", s.AvgDegree)
	}
	// Table I reports 31% peering links; accept a generous band.
	if s.PeerFraction < 0.15 || s.PeerFraction > 0.50 {
		t.Errorf("peer fraction = %v, want roughly 0.31", s.PeerFraction)
	}
	// Tier-1 ASes must have no providers.
	for v := 0; v < 12; v++ {
		for _, nb := range g.Neighbors(v) {
			if nb.Rel == Provider {
				t.Fatalf("tier-1 AS %d has a provider %d", v, nb.AS)
			}
		}
	}
	// Every non-tier-1 AS must have at least one provider (reachability).
	for v := 12; v < g.N(); v++ {
		has := false
		for _, nb := range g.Neighbors(v) {
			if nb.Rel == Provider {
				has = true
				break
			}
		}
		if !has {
			t.Fatalf("AS %d has no provider", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{N: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{N: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Links() != b.Links() || a.PCLinks() != b.PCLinks() {
		t.Fatalf("same seed gave different topologies: %d/%d vs %d/%d links",
			a.Links(), a.PCLinks(), b.Links(), b.PCLinks())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("AS %d degree differs: %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("AS %d neighbor %d differs: %+v vs %+v", v, i, na[i], nb[i])
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(GenConfig{N: 500, Seed: 1})
	b, _ := Generate(GenConfig{N: 500, Seed: 2})
	if a.Links() == b.Links() && a.PeerLinks() == b.PeerLinks() && a.PCLinks() == b.PCLinks() {
		// Counts could coincide; compare adjacency of a few nodes.
		same := true
		for v := 0; v < 50 && same; v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			if len(na) != len(nb) {
				same = false
				break
			}
			for i := range na {
				if na[i] != nb[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestGenerateTinyAndEdgeCases(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 13, 50} {
		g, err := Generate(GenConfig{N: n, Seed: 3})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if g.N() != n {
			t.Fatalf("N=%d: got %d nodes", n, g.N())
		}
		if n > 1 && !g.Connected() {
			t.Fatalf("N=%d: disconnected", n)
		}
	}
	if _, err := Generate(GenConfig{N: 0}); err == nil {
		t.Error("N=0 must error")
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	g, err := Generate(GenConfig{N: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	// Preferential attachment should produce hubs far above the average.
	if float64(s.MaxDegree) < 8*s.AvgDegree {
		t.Errorf("max degree %d vs avg %.1f: degree distribution not heavy-tailed",
			s.MaxDegree, s.AvgDegree)
	}
	// Most ASes are stubs, as in the real Internet (~85%).
	if frac := float64(s.Stubs) / float64(s.Nodes); frac < 0.6 {
		t.Errorf("stub fraction = %v, want majority stubs", frac)
	}
}

// Property: generation never produces a P/C cycle or duplicate link for any
// (small) size and seed — Build would reject both.
func TestQuickGenerateAlwaysValid(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		g, err := Generate(GenConfig{N: int(n%200) + 1, Seed: seed})
		return err == nil && g != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPaperScaleConfig(t *testing.T) {
	cfg := PaperScaleConfig(1)
	if cfg.N != 44340 {
		t.Errorf("paper-scale N = %d, want 44340", cfg.N)
	}
}

func BenchmarkGenerate2k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GenConfig{N: 2000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
