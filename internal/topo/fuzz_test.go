package topo

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hardens the relationship-file parser: arbitrary text must
// never panic, and successful parses must survive a Write/Parse round trip
// with identical counts.
func FuzzParse(f *testing.F) {
	f.Add("1|2|-1\n2|3|0\n")
	f.Add("# comment\n\n10|20|-1\n")
	f.Add("a|b|c")
	f.Add("1|2|-1\n1|2|0\n") // duplicate link
	f.Add("|||")

	f.Fuzz(func(t *testing.T, input string) {
		g, asns, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g, asns); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		g2, _, err := Parse(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if g2.N() != g.N() || g2.Links() != g.Links() ||
			g2.PCLinks() != g.PCLinks() || g2.PeerLinks() != g.PeerLinks() {
			t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
				g.N(), g.Links(), g2.N(), g2.Links())
		}
	})
}
