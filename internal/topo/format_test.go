package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	input := `# a comment
174|3356|0
174|1299|0

3356|65001|-1
1299|65001|-1
`
	g, asns, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.PCLinks() != 2 || g.PeerLinks() != 2 {
		t.Fatalf("pc=%d peer=%d, want 2/2", g.PCLinks(), g.PeerLinks())
	}
	idx := map[int]int{}
	for i, a := range asns {
		idx[a] = i
	}
	if r, ok := g.Rel(idx[3356], idx[65001]); !ok || r != Customer {
		t.Errorf("3356->65001 = %v,%v, want customer", r, ok)
	}
	if r, ok := g.Rel(idx[174], idx[3356]); !ok || r != Peer {
		t.Errorf("174-3356 = %v,%v, want peer", r, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1|2",           // too few fields
		"x|2|0",         // bad AS a
		"1|y|0",         // bad AS b
		"1|2|7",         // bad relationship
		"1|2|-1\n1|2|0", // duplicate link
	}
	for _, in := range cases {
		if _, _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail to parse", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g, err := Generate(GenConfig{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, _, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if g2.N() != g.N() || g2.Links() != g.Links() ||
		g2.PCLinks() != g.PCLinks() || g2.PeerLinks() != g.PeerLinks() {
		t.Fatalf("round trip mismatch: %d/%d/%d/%d vs %d/%d/%d/%d",
			g2.N(), g2.Links(), g2.PCLinks(), g2.PeerLinks(),
			g.N(), g.Links(), g.PCLinks(), g.PeerLinks())
	}
}

func TestWriteWithASNMapping(t *testing.T) {
	g, err := NewBuilder(2).AddPC(0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g, []int{15169, 32934}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "15169|32934|-1") {
		t.Errorf("output missing mapped ASNs:\n%s", buf.String())
	}
}

func TestParseEmpty(t *testing.T) {
	g, asns, err := Parse(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || len(asns) != 0 {
		t.Errorf("empty parse gave %d nodes", g.N())
	}
}
