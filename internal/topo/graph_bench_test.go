package topo

import (
	"math/rand"
	"sort"
	"testing"
)

// relLinear is the pre-CSR O(degree) relationship lookup, kept here as the
// baseline the sorted-adjacency binary search is benchmarked against.
func relLinear(g *Graph, v, u int) (Rel, bool) {
	for _, nb := range g.Neighbors(v) {
		if nb.AS == int32(u) {
			return nb.Rel, true
		}
	}
	return 0, false
}

// hubGraph generates an Internet-like topology and returns it along with
// its highest-degree AS — a tier-1 hub with thousands of neighbors.
func hubGraph(tb testing.TB, n int) (*Graph, int) {
	tb.Helper()
	g, err := Generate(GenConfig{N: n, Seed: 7})
	if err != nil {
		tb.Fatalf("Generate: %v", err)
	}
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	return g, hub
}

func BenchmarkGraphRelHub(b *testing.B) {
	g, hub := hubGraph(b, 20000)
	b.Logf("hub degree: %d", g.Degree(hub))
	nbrs := g.Neighbors(hub)
	queries := make([]int, 1024)
	rng := rand.New(rand.NewSource(11))
	for i := range queries {
		queries[i] = int(nbrs[rng.Intn(len(nbrs))].AS)
	}
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := g.Rel(hub, queries[i%len(queries)]); !ok {
				b.Fatal("missing link")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := relLinear(g, hub, queries[i%len(queries)]); !ok {
				b.Fatal("missing link")
			}
		}
	})
}

func BenchmarkGraphRemoveLinksScale(b *testing.B) {
	g, hub := hubGraph(b, 20000)
	nbrs := g.Neighbors(hub)
	cut := []LinkRef{{A: hub, B: int(nbrs[0].AS)}, {A: hub, B: int(nbrs[len(nbrs)/2].AS)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RemoveLinks(g, cut); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGraphRelMatchesLinear(t *testing.T) {
	g, hub := hubGraph(t, 2000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v, u := rng.Intn(g.N()), rng.Intn(g.N())
		gotRel, gotOK := g.Rel(v, u)
		wantRel, wantOK := relLinear(g, v, u)
		if gotRel != wantRel || gotOK != wantOK {
			t.Fatalf("Rel(%d,%d) = (%v,%v), linear scan says (%v,%v)", v, u, gotRel, gotOK, wantRel, wantOK)
		}
	}
	// Every hub neighbor must resolve.
	for _, nb := range g.Neighbors(hub) {
		r, ok := g.Rel(hub, int(nb.AS))
		if !ok || r != nb.Rel {
			t.Fatalf("Rel(hub,%d) = (%v,%v), want (%v,true)", nb.AS, r, ok, nb.Rel)
		}
	}
}

func TestGraphAdjacencySorted(t *testing.T) {
	g, _ := hubGraph(t, 2000)
	for v := 0; v < g.N(); v++ {
		list := g.Neighbors(v)
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].AS < list[j].AS }) {
			t.Fatalf("adjacency of AS %d not sorted", v)
		}
	}
}

func TestGraphMemStats(t *testing.T) {
	g, err := NewBuilder(4).AddPC(0, 1).AddPC(0, 2).AddPeer(1, 2).AddPC(1, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	m := g.MemStats()
	if m.Nodes != 4 || m.Links != 4 {
		t.Fatalf("MemStats nodes/links = %d/%d, want 4/4", m.Nodes, m.Links)
	}
	if m.OffsetBytes <= 0 || m.NeighborBytes <= 0 {
		t.Fatalf("MemStats byte accounting not positive: %+v", m)
	}
	if m.TotalBytes != m.OffsetBytes+m.NeighborBytes {
		t.Fatalf("TotalBytes %d != %d + %d", m.TotalBytes, m.OffsetBytes, m.NeighborBytes)
	}
	if m.BytesPerLink <= 0 {
		t.Fatalf("BytesPerLink = %v, want > 0", m.BytesPerLink)
	}
}

func TestBuilderHasLinkConstantTime(t *testing.T) {
	b := NewBuilder(10)
	b.AddPC(0, 1).AddPeer(1, 2)
	if !b.HasLink(0, 1) || !b.HasLink(1, 0) {
		t.Fatal("HasLink should see the PC link from both sides")
	}
	if !b.HasLink(2, 1) {
		t.Fatal("HasLink should see the peer link")
	}
	if b.HasLink(0, 2) || b.HasLink(-1, 3) || b.HasLink(3, 99) {
		t.Fatal("HasLink false positives")
	}
	if _, err := b.AddPC(1, 0).Build(); err == nil {
		t.Fatal("duplicate link (reversed endpoints) should fail Build")
	}
}
