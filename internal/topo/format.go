package topo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format mirrors CAIDA's AS-relationship "serial-1" files:
//
//	# comment
//	<a>|<b>|-1     a is a provider of b
//	<a>|<b>|0      a and b are peers
//
// AS numbers may be arbitrary non-negative integers; they are mapped to
// dense indices on parse. Parse returns the mapping so callers can report
// results in original AS numbers.

// Parse reads a relationship file and returns the graph plus the
// dense-index -> original-ASN mapping.
func Parse(r io.Reader) (*Graph, []int, error) {
	type rawLink struct {
		a, b int
		rel  int
	}
	var links []rawLink
	ids := map[int]int{}
	var order []int

	intern := func(asn int) int {
		if idx, ok := ids[asn]; ok {
			return idx
		}
		idx := len(order)
		ids[asn] = idx
		order = append(order, asn)
		return idx
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) < 3 {
			return nil, nil, fmt.Errorf("topo: line %d: want a|b|rel, got %q", lineno, line)
		}
		a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, nil, fmt.Errorf("topo: line %d: bad AS %q: %v", lineno, parts[0], err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, nil, fmt.Errorf("topo: line %d: bad AS %q: %v", lineno, parts[1], err)
		}
		rel, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || (rel != -1 && rel != 0) {
			return nil, nil, fmt.Errorf("topo: line %d: bad relationship %q (want -1 or 0)", lineno, parts[2])
		}
		links = append(links, rawLink{a: intern(a), b: intern(b), rel: rel})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("topo: read: %v", err)
	}

	builder := NewBuilder(len(order))
	for _, l := range links {
		if l.rel == -1 {
			builder.AddPC(l.a, l.b)
		} else {
			builder.AddPeer(l.a, l.b)
		}
	}
	g, err := builder.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, order, nil
}

// Write serializes the graph in the relationship format. When asns is nil,
// dense indices are written directly; otherwise asns maps index -> ASN.
func Write(w io.Writer, g *Graph, asns []int) error {
	bw := bufio.NewWriter(w)
	name := func(i int32) int {
		if asns == nil {
			return int(i)
		}
		return asns[i]
	}
	if _, err := fmt.Fprintf(bw, "# %d nodes, %d links (%d p2c, %d p2p)\n",
		g.N(), g.Links(), g.PCLinks(), g.PeerLinks()); err != nil {
		return err
	}
	type line struct {
		a, b, rel int
	}
	lines := make([]line, 0, g.Links())
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			switch nb.Rel {
			case Customer:
				lines = append(lines, line{a: name(int32(v)), b: name(nb.AS), rel: -1})
			case Peer:
				if int32(v) < nb.AS {
					lines = append(lines, line{a: name(int32(v)), b: name(nb.AS), rel: 0})
				}
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].a != lines[j].a {
			return lines[i].a < lines[j].a
		}
		if lines[i].b != lines[j].b {
			return lines[i].b < lines[j].b
		}
		return lines[i].rel < lines[j].rel
	})
	for _, l := range lines {
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", l.a, l.b, l.rel); err != nil {
			return err
		}
	}
	return bw.Flush()
}
