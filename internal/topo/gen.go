package topo

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes the synthetic Internet-like topology generator.
//
// The generator substitutes for the UCLA IRL trace the paper evaluates on
// (Nov 2014: 44,340 ASes, 109,360 links, 69% provider-customer, 31%
// peering). It reproduces the structural properties MIFO's evaluation
// depends on: a strict (acyclic) customer-provider hierarchy, heavy-tailed
// degree distribution via preferential attachment, a dense tier-1 peering
// clique, multi-homed stubs, and heavily peered content-provider ASes.
type GenConfig struct {
	// N is the total number of ASes. Must be >= Tier1.
	N int
	// Tier1 is the number of tier-1 (provider-free) ASes, fully meshed
	// with peering links. Default 12 (the conventional tier-1 count).
	Tier1 int
	// TransitFrac is the fraction of non-tier-1 ASes that are transit
	// providers (they acquire customers). Default 0.15.
	TransitFrac float64
	// MeanProviders is the mean multi-homing degree: the expected number
	// of providers per non-tier-1 AS (min 1). Default 1.7, matching
	// Table I's 75,046 P/C links over 44,340 ASes.
	MeanProviders float64
	// MaxProviders caps the providers per AS. Default 6.
	MaxProviders int
	// MeanTransitPeers is the expected number of peering links initiated
	// by each transit AS (drawn geometrically). Default 4.6, calibrated
	// so peering is ~31% of links at default settings.
	MeanTransitPeers float64
	// ContentProviders is the number of stub ASes that receive extra
	// peering links (Google/Facebook-style). Default max(2, N/400).
	ContentProviders int
	// ContentProviderPeers is the expected peer count for each content
	// provider. Default 20.
	ContentProviderPeers float64
	// Seed seeds the deterministic PRNG.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Tier1 <= 0 {
		c.Tier1 = 12
	}
	if c.Tier1 > c.N {
		c.Tier1 = c.N
	}
	if c.TransitFrac <= 0 {
		c.TransitFrac = 0.15
	}
	if c.MeanProviders <= 0 {
		c.MeanProviders = 1.7
	}
	if c.MaxProviders <= 0 {
		c.MaxProviders = 6
	}
	if c.MeanTransitPeers <= 0 {
		c.MeanTransitPeers = 4.6
	}
	if c.ContentProviders <= 0 {
		c.ContentProviders = c.N / 400
		if c.ContentProviders < 2 {
			c.ContentProviders = 2
		}
	}
	if c.ContentProviderPeers <= 0 {
		c.ContentProviderPeers = 20
	}
	return c
}

// Generate builds a synthetic AS topology.
//
// AS indices are assigned in creation order: tier-1 ASes first, then transit
// ASes, then stubs. Providers are always chosen among strictly
// earlier-created ASes, so the provider-customer digraph is acyclic by
// construction.
func Generate(cfg GenConfig) (*Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 1 {
		return nil, fmt.Errorf("topo: GenConfig.N must be >= 1, got %d", cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder(cfg.N)

	t1 := cfg.Tier1
	// Tier-1 clique: settlement-free peering among all tier-1 ASes.
	for i := 0; i < t1; i++ {
		for j := i + 1; j < t1; j++ {
			b.AddPeer(i, j)
		}
	}
	if cfg.N == t1 {
		return b.Build()
	}

	nonT1 := cfg.N - t1
	transit := int(cfg.TransitFrac * float64(nonT1))
	if transit < 0 {
		transit = 0
	}
	transitEnd := t1 + transit // ASes [t1, transitEnd) are transit; [transitEnd, N) are stubs

	// attach holds the preferential-attachment ballot box: each eligible
	// provider appears once per unit of attractiveness (customer degree+1).
	attach := make([]int32, 0, cfg.N*3)
	for i := 0; i < t1; i++ {
		attach = append(attach, int32(i))
	}

	pickProviders := func(v, count int) []int {
		chosen := make([]int, 0, count)
		for len(chosen) < count {
			p := int(attach[rng.Intn(len(attach))])
			if p >= v || b.HasLink(v, p) || containsInt(chosen, p) {
				// Already linked, later-created, or a repeat: try again.
				// Bail out if the candidate pool is too small.
				if len(chosen) >= len(attach) {
					break
				}
				if b.Degree(v)+len(chosen) >= v {
					break // v can't have more providers than predecessors
				}
				continue
			}
			chosen = append(chosen, p)
		}
		return chosen
	}

	for v := t1; v < cfg.N; v++ {
		nprov := 1 + geometric(rng, cfg.MeanProviders-1)
		if nprov > cfg.MaxProviders {
			nprov = cfg.MaxProviders
		}
		for _, p := range pickProviders(v, nprov) {
			b.AddPC(p, v)
			attach = append(attach, int32(p)) // provider grows more attractive
		}
		if v < transitEnd {
			// Transit ASes join the ballot box so later ASes can buy from them.
			attach = append(attach, int32(v))
		}
	}

	// Peering among transit ASes: each transit AS initiates a geometric
	// number of peerings with other transit (or tier-1) ASes.
	for v := t1; v < transitEnd; v++ {
		npeer := geometric(rng, cfg.MeanTransitPeers)
		for k := 0; k < npeer; k++ {
			u := rng.Intn(transitEnd)
			if u != v && !b.HasLink(v, u) {
				b.AddPeer(v, u)
			}
		}
	}

	// Content providers: the last ContentProviders stubs get rich peering
	// to transit ASes, mirroring hypergiant connectivity.
	cps := cfg.ContentProviders
	if cps > cfg.N-transitEnd {
		cps = cfg.N - transitEnd
	}
	for i := 0; i < cps; i++ {
		v := cfg.N - 1 - i
		npeer := geometric(rng, cfg.ContentProviderPeers)
		for k := 0; k < npeer; k++ {
			u := rng.Intn(transitEnd)
			if u != v && !b.HasLink(v, u) {
				b.AddPeer(v, u)
			}
		}
	}

	return b.Build()
}

// geometric draws a geometric-ish variate with the given mean (>= 0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() > p {
		n++
		if n > 10000 {
			break
		}
	}
	return n
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// PaperScaleConfig returns the generator configuration calibrated to
// Table I of the paper (44,340 ASes). Generating at this scale takes a few
// seconds; most experiments run at a smaller N with identical shape.
func PaperScaleConfig(seed int64) GenConfig {
	return GenConfig{N: 44340, Seed: seed}
}
