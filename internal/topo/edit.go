package topo

// LinkRef names an undirected inter-AS link by its endpoints.
type LinkRef struct {
	A, B int
}

// RemoveLinks returns a copy of g without the given links. Links that do
// not exist are ignored. The result shares no state with g.
func RemoveLinks(g *Graph, remove []LinkRef) (*Graph, error) {
	gone := make(map[[2]int32]bool, len(remove))
	for _, l := range remove {
		a, b := int32(l.A), int32(l.B)
		if a > b {
			a, b = b, a
		}
		gone[[2]int32{a, b}] = true
	}
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			if int32(v) > nb.AS {
				continue // wire each link once
			}
			if gone[[2]int32{int32(v), nb.AS}] {
				continue
			}
			switch nb.Rel {
			case Customer:
				b.AddPC(v, int(nb.AS))
			case Provider:
				b.AddPC(int(nb.AS), v)
			case Peer:
				b.AddPeer(v, int(nb.AS))
			}
		}
	}
	return b.Build()
}
