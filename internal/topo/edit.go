package topo

// LinkRef names an undirected inter-AS link by its endpoints.
type LinkRef struct {
	A, B int
}

// RemoveLinks returns a copy of g without the given links. Links that do
// not exist are ignored. The result shares no state with g.
//
// The copy is a direct CSR filter: one pass over the packed neighbor arena
// dropping removed entries. Segments stay sorted (filtering preserves
// order) and removal cannot introduce a provider-customer cycle, so no
// rebuild through Builder — and no re-sort or cycle check — is needed.
// The error return is kept for call-site compatibility; it is always nil.
func RemoveLinks(g *Graph, remove []LinkRef) (*Graph, error) {
	gone := make(map[uint64]struct{}, len(remove))
	for _, l := range remove {
		if l.A < 0 || l.A >= g.N() || l.B < 0 || l.B >= g.N() || l.A == l.B {
			continue
		}
		gone[linkKey(l.A, l.B)] = struct{}{}
	}
	out := &Graph{
		off:  make([]int32, g.N()+1),
		nbrs: make([]Neighbor, 0, len(g.nbrs)),
	}
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			if _, cut := gone[linkKey(v, int(nb.AS))]; cut {
				continue
			}
			out.nbrs = append(out.nbrs, nb)
			if nb.Rel == Customer {
				out.pcLinks++
			} else if nb.Rel == Peer && int32(v) < nb.AS {
				out.peerLinks++
			}
		}
		out.off[v+1] = int32(len(out.nbrs))
	}
	return out, nil
}
