package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g, err := NewBuilder(3).AddPC(0, 1).AddPeer(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "test" {`,
		"0 -> 1;",
		"1 -> 2 [dir=none, style=dashed];",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Each link rendered exactly once: 0->1 and 1->2.
	if got := strings.Count(out, "->"); got != 2 {
		t.Errorf("edge lines = %d, want 2 in:\n%s", got, out)
	}
	// Default name.
	buf.Reset()
	if err := WriteDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `digraph "topology"`) {
		t.Error("default graph name not applied")
	}
}
