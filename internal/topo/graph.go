// Package topo models the AS-level Internet topology MIFO operates on:
// ASes connected by inter-AS links annotated with business relationships
// (customer/provider or mutual peering), per Gao–Rexford.
//
// The package provides an immutable Graph built through a Builder, a
// synthetic Internet-like topology generator calibrated against the paper's
// Table I dataset (UCLA IRL, Nov 2014), and a CAIDA-style text format so
// real relationship inferences can be substituted for the generator.
package topo

import (
	"fmt"
	"sort"
)

// Rel is the business relationship of a neighbor as seen from the AS that
// holds the adjacency entry.
type Rel int8

const (
	// Customer means the neighbor is my customer (I am its provider).
	Customer Rel = iota
	// Peer means the neighbor and I are settlement-free peers.
	Peer
	// Provider means the neighbor is my provider (I am its customer).
	Provider
)

// Invert returns the relationship from the neighbor's point of view.
func (r Rel) Invert() Rel {
	switch r {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return Peer
	}
}

// String returns a short human-readable name.
func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Neighbor is one adjacency entry: the neighbor's AS index and its
// relationship relative to the owning AS.
type Neighbor struct {
	AS  int32
	Rel Rel
}

// Graph is an immutable AS-level topology. ASes are dense indices [0, N).
// Adjacency lists are sorted by neighbor index, enabling binary-search
// relationship lookups.
type Graph struct {
	adj       [][]Neighbor
	pcLinks   int
	peerLinks int
}

// N returns the number of ASes.
func (g *Graph) N() int { return len(g.adj) }

// Links returns the total number of undirected inter-AS links.
func (g *Graph) Links() int { return g.pcLinks + g.peerLinks }

// PCLinks returns the number of provider–customer links.
func (g *Graph) PCLinks() int { return g.pcLinks }

// PeerLinks returns the number of mutual peering links.
func (g *Graph) PeerLinks() int { return g.peerLinks }

// Degree returns the number of neighbors of AS v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of AS v, sorted by neighbor index.
// The returned slice is shared; callers must not modify it.
func (g *Graph) Neighbors(v int) []Neighbor { return g.adj[v] }

// Rel returns the relationship of neighbor u as seen from v, and whether a
// link (v, u) exists.
func (g *Graph) Rel(v, u int) (Rel, bool) {
	list := g.adj[v]
	i := sort.Search(len(list), func(i int) bool { return list[i].AS >= int32(u) })
	if i < len(list) && list[i].AS == int32(u) {
		return list[i].Rel, true
	}
	return 0, false
}

// HasLink reports whether an inter-AS link between v and u exists.
func (g *Graph) HasLink(v, u int) bool {
	_, ok := g.Rel(v, u)
	return ok
}

// IsCustomer reports whether u is a customer of v.
func (g *Graph) IsCustomer(v, u int) bool {
	r, ok := g.Rel(v, u)
	return ok && r == Customer
}

// CustomerCount returns the number of customers of v.
func (g *Graph) CustomerCount(v int) int {
	n := 0
	for _, nb := range g.adj[v] {
		if nb.Rel == Customer {
			n++
		}
	}
	return n
}

// TransitNeighborCount returns the number of providers plus peers of v —
// the ranking metric the paper uses for content providers ("by the number
// of providers and peers").
func (g *Graph) TransitNeighborCount(v int) int {
	n := 0
	for _, nb := range g.adj[v] {
		if nb.Rel != Customer {
			n++
		}
	}
	return n
}

// IsStub reports whether v has no customers.
func (g *Graph) IsStub(v int) bool { return g.CustomerCount(v) == 0 }

// Stats summarizes the topology in Table I's terms.
type Stats struct {
	Nodes     int
	Links     int
	PCLinks   int
	PeerLinks int

	AvgDegree    float64
	MaxDegree    int
	Stubs        int // ASes with no customers
	MultiHomed   int // ASes with >= 2 neighbors
	PeerFraction float64
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	s := Stats{
		Nodes:     g.N(),
		Links:     g.Links(),
		PCLinks:   g.pcLinks,
		PeerLinks: g.peerLinks,
	}
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d >= 2 {
			s.MultiHomed++
		}
		if g.IsStub(v) {
			s.Stubs++
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = 2 * float64(s.Links) / float64(s.Nodes)
	}
	if s.Links > 0 {
		s.PeerFraction = float64(s.PeerLinks) / float64(s.Links)
	}
	return s
}

// Builder accumulates links and produces an immutable Graph.
type Builder struct {
	n   int
	adj [][]Neighbor
	err error
}

// NewBuilder returns a Builder for a topology with n ASes and no links.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]Neighbor, n)}
}

func (b *Builder) check(v, u int) bool {
	if b.err != nil {
		return false
	}
	if v < 0 || v >= b.n || u < 0 || u >= b.n {
		b.err = fmt.Errorf("topo: AS index out of range: (%d, %d) with n=%d", v, u, b.n)
		return false
	}
	if v == u {
		b.err = fmt.Errorf("topo: self-link at AS %d", v)
		return false
	}
	for _, nb := range b.adj[v] {
		if nb.AS == int32(u) {
			b.err = fmt.Errorf("topo: duplicate link between AS %d and AS %d", v, u)
			return false
		}
	}
	return true
}

// AddPC records a provider–customer link: provider serves customer.
func (b *Builder) AddPC(provider, customer int) *Builder {
	if b.check(provider, customer) {
		b.adj[provider] = append(b.adj[provider], Neighbor{AS: int32(customer), Rel: Customer})
		b.adj[customer] = append(b.adj[customer], Neighbor{AS: int32(provider), Rel: Provider})
	}
	return b
}

// AddPeer records a settlement-free peering link between a and b.
func (b *Builder) AddPeer(x, y int) *Builder {
	if b.check(x, y) {
		b.adj[x] = append(b.adj[x], Neighbor{AS: int32(y), Rel: Peer})
		b.adj[y] = append(b.adj[y], Neighbor{AS: int32(x), Rel: Peer})
	}
	return b
}

// HasLink reports whether a link between v and u has been added so far.
func (b *Builder) HasLink(v, u int) bool {
	if v < 0 || v >= b.n || u < 0 || u >= b.n {
		return false
	}
	for _, nb := range b.adj[v] {
		if nb.AS == int32(u) {
			return true
		}
	}
	return false
}

// Degree returns the current number of neighbors of v.
func (b *Builder) Degree(v int) int { return len(b.adj[v]) }

// Build validates the accumulated links and returns the Graph. The
// provider–customer digraph must be acyclic (a Gao–Rexford assumption the
// paper's loop-freedom proof relies on).
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{adj: b.adj}
	for v := range g.adj {
		sort.Slice(g.adj[v], func(i, j int) bool { return g.adj[v][i].AS < g.adj[v][j].AS })
		for _, nb := range g.adj[v] {
			switch nb.Rel {
			case Customer:
				g.pcLinks++ // counted once, from the provider side
			case Peer:
				if int32(v) < nb.AS {
					g.peerLinks++
				}
			}
		}
	}
	if cycle := g.findPCCycle(); cycle {
		return nil, fmt.Errorf("topo: provider-customer relationship digraph contains a cycle")
	}
	return g, nil
}

// findPCCycle runs Kahn's algorithm over provider->customer edges.
func (g *Graph) findPCCycle() bool {
	n := g.N()
	indeg := make([]int, n) // number of providers
	for v := 0; v < n; v++ {
		for _, nb := range g.adj[v] {
			if nb.Rel == Provider {
				indeg[v]++
			}
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, nb := range g.adj[v] {
			if nb.Rel == Customer {
				indeg[nb.AS]--
				if indeg[nb.AS] == 0 {
					queue = append(queue, int(nb.AS))
				}
			}
		}
	}
	return seen != n
}

// Connected reports whether the underlying undirected graph is connected
// (ignoring relationship direction). An empty graph is connected.
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[v] {
			if !visited[nb.AS] {
				visited[nb.AS] = true
				count++
				stack = append(stack, int(nb.AS))
			}
		}
	}
	return count == n
}
