// Package topo models the AS-level Internet topology MIFO operates on:
// ASes connected by inter-AS links annotated with business relationships
// (customer/provider or mutual peering), per Gao–Rexford.
//
// The package provides an immutable Graph built through a Builder, a
// synthetic Internet-like topology generator calibrated against the paper's
// Table I dataset (UCLA IRL, Nov 2014), and a CAIDA-style text format so
// real relationship inferences can be substituted for the generator.
package topo

import (
	"fmt"
	"sort"
	"unsafe"
)

// Rel is the business relationship of a neighbor as seen from the AS that
// holds the adjacency entry.
type Rel int8

const (
	// Customer means the neighbor is my customer (I am its provider).
	Customer Rel = iota
	// Peer means the neighbor and I are settlement-free peers.
	Peer
	// Provider means the neighbor is my provider (I am its customer).
	Provider
)

// Invert returns the relationship from the neighbor's point of view.
func (r Rel) Invert() Rel {
	switch r {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return Peer
	}
}

// String returns a short human-readable name.
func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Neighbor is one adjacency entry: the neighbor's AS index and its
// relationship relative to the owning AS.
type Neighbor struct {
	AS  int32
	Rel Rel
}

// Graph is an immutable AS-level topology. ASes are dense indices [0, N).
//
// Adjacency is stored CSR-style in one arena: a single offsets array plus
// one packed neighbor array shared by every AS, so a 44,340-AS / 109,360-
// link Internet graph is exactly two allocations (~1.9 MB) instead of one
// slice header + backing array per AS. Per-AS adjacency segments are
// sorted by neighbor index, enabling binary-search relationship lookups on
// hub ASes with thousands of neighbors.
type Graph struct {
	off       []int32    // len N()+1; AS v's neighbors live in nbrs[off[v]:off[v+1]]
	nbrs      []Neighbor // len 2*Links(), sorted by neighbor index within each segment
	pcLinks   int
	peerLinks int
}

// N returns the number of ASes.
func (g *Graph) N() int { return len(g.off) - 1 }

// Links returns the total number of undirected inter-AS links.
func (g *Graph) Links() int { return g.pcLinks + g.peerLinks }

// PCLinks returns the number of provider–customer links.
func (g *Graph) PCLinks() int { return g.pcLinks }

// PeerLinks returns the number of mutual peering links.
func (g *Graph) PeerLinks() int { return g.peerLinks }

// Degree returns the number of neighbors of AS v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the adjacency list of AS v, sorted by neighbor index.
// The returned slice aliases the graph's packed arena; callers must not
// modify it.
func (g *Graph) Neighbors(v int) []Neighbor { return g.nbrs[g.off[v]:g.off[v+1]] }

// MemStats accounts the graph's memory footprint.
type MemStats struct {
	// Nodes and Links mirror N() and Links().
	Nodes, Links int
	// OffsetBytes is the size of the CSR offsets array.
	OffsetBytes int64
	// NeighborBytes is the size of the packed neighbor arena
	// (two directed entries per undirected link).
	NeighborBytes int64
	// TotalBytes is the sum of the above — the whole adjacency footprint.
	TotalBytes int64
	// BytesPerLink is TotalBytes per undirected link.
	BytesPerLink float64
}

// MemStats returns the adjacency arena's memory accounting.
func (g *Graph) MemStats() MemStats {
	m := MemStats{
		Nodes:         g.N(),
		Links:         g.Links(),
		OffsetBytes:   int64(cap(g.off)) * int64(unsafe.Sizeof(int32(0))),
		NeighborBytes: int64(cap(g.nbrs)) * int64(unsafe.Sizeof(Neighbor{})),
	}
	m.TotalBytes = m.OffsetBytes + m.NeighborBytes
	if m.Links > 0 {
		m.BytesPerLink = float64(m.TotalBytes) / float64(m.Links)
	}
	return m
}

// Rel returns the relationship of neighbor u as seen from v, and whether a
// link (v, u) exists. Adjacency segments are sorted, so this is a binary
// search — O(log degree) even on hub ASes (see BenchmarkGraphRelHub).
func (g *Graph) Rel(v, u int) (Rel, bool) {
	list := g.Neighbors(v)
	i := sort.Search(len(list), func(i int) bool { return list[i].AS >= int32(u) })
	if i < len(list) && list[i].AS == int32(u) {
		return list[i].Rel, true
	}
	return 0, false
}

// HasLink reports whether an inter-AS link between v and u exists.
func (g *Graph) HasLink(v, u int) bool {
	_, ok := g.Rel(v, u)
	return ok
}

// IsCustomer reports whether u is a customer of v.
func (g *Graph) IsCustomer(v, u int) bool {
	r, ok := g.Rel(v, u)
	return ok && r == Customer
}

// CustomerCount returns the number of customers of v.
func (g *Graph) CustomerCount(v int) int {
	n := 0
	for _, nb := range g.Neighbors(v) {
		if nb.Rel == Customer {
			n++
		}
	}
	return n
}

// TransitNeighborCount returns the number of providers plus peers of v —
// the ranking metric the paper uses for content providers ("by the number
// of providers and peers").
func (g *Graph) TransitNeighborCount(v int) int {
	n := 0
	for _, nb := range g.Neighbors(v) {
		if nb.Rel != Customer {
			n++
		}
	}
	return n
}

// IsStub reports whether v has no customers.
func (g *Graph) IsStub(v int) bool { return g.CustomerCount(v) == 0 }

// Stats summarizes the topology in Table I's terms.
type Stats struct {
	Nodes     int
	Links     int
	PCLinks   int
	PeerLinks int

	AvgDegree    float64
	MaxDegree    int
	Stubs        int // ASes with no customers
	MultiHomed   int // ASes with >= 2 neighbors
	PeerFraction float64
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	s := Stats{
		Nodes:     g.N(),
		Links:     g.Links(),
		PCLinks:   g.pcLinks,
		PeerLinks: g.peerLinks,
	}
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d >= 2 {
			s.MultiHomed++
		}
		if g.IsStub(v) {
			s.Stubs++
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = 2 * float64(s.Links) / float64(s.Nodes)
	}
	if s.Links > 0 {
		s.PeerFraction = float64(s.PeerLinks) / float64(s.Links)
	}
	return s
}

// Builder accumulates links and produces an immutable Graph.
//
// Link existence is tracked in a hash set keyed by the endpoint pair, so
// duplicate detection and HasLink are O(1) regardless of degree — adding
// the last peering link of a 5,000-neighbor hub costs the same as its
// first (the per-AS linear scans this replaces made building hub-heavy
// topologies quadratic in hub degree).
type Builder struct {
	n     int
	adj   [][]Neighbor
	links map[uint64]struct{}
	edges int // directed adjacency entries accumulated so far
	err   error
}

// NewBuilder returns a Builder for a topology with n ASes and no links.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]Neighbor, n), links: make(map[uint64]struct{})}
}

// linkKey names the undirected pair (v, u) order-independently.
func linkKey(v, u int) uint64 {
	if v > u {
		v, u = u, v
	}
	return uint64(uint32(v))<<32 | uint64(uint32(u))
}

func (b *Builder) check(v, u int) bool {
	if b.err != nil {
		return false
	}
	if v < 0 || v >= b.n || u < 0 || u >= b.n {
		b.err = fmt.Errorf("topo: AS index out of range: (%d, %d) with n=%d", v, u, b.n)
		return false
	}
	if v == u {
		b.err = fmt.Errorf("topo: self-link at AS %d", v)
		return false
	}
	if _, dup := b.links[linkKey(v, u)]; dup {
		b.err = fmt.Errorf("topo: duplicate link between AS %d and AS %d", v, u)
		return false
	}
	return true
}

func (b *Builder) add(v, u int, rel Rel) {
	b.links[linkKey(v, u)] = struct{}{}
	b.adj[v] = append(b.adj[v], Neighbor{AS: int32(u), Rel: rel})
	b.adj[u] = append(b.adj[u], Neighbor{AS: int32(v), Rel: rel.Invert()})
	b.edges += 2
}

// AddPC records a provider–customer link: provider serves customer.
func (b *Builder) AddPC(provider, customer int) *Builder {
	if b.check(provider, customer) {
		b.add(provider, customer, Customer)
	}
	return b
}

// AddPeer records a settlement-free peering link between a and b.
func (b *Builder) AddPeer(x, y int) *Builder {
	if b.check(x, y) {
		b.add(x, y, Peer)
	}
	return b
}

// HasLink reports whether a link between v and u has been added so far.
// It is a constant-time set lookup.
func (b *Builder) HasLink(v, u int) bool {
	if v < 0 || v >= b.n || u < 0 || u >= b.n {
		return false
	}
	_, ok := b.links[linkKey(v, u)]
	return ok
}

// Degree returns the current number of neighbors of v.
func (b *Builder) Degree(v int) int { return len(b.adj[v]) }

// Build validates the accumulated links and returns the Graph. The
// provider–customer digraph must be acyclic (a Gao–Rexford assumption the
// paper's loop-freedom proof relies on).
//
// Build packs the per-AS lists into the CSR arena (one offsets array, one
// neighbor array) and sorts each AS's segment by neighbor index.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		off:  make([]int32, b.n+1),
		nbrs: make([]Neighbor, 0, b.edges),
	}
	for v := 0; v < b.n; v++ {
		seg := b.adj[v]
		start := len(g.nbrs)
		g.nbrs = append(g.nbrs, seg...)
		pack := g.nbrs[start:]
		sort.Slice(pack, func(i, j int) bool { return pack[i].AS < pack[j].AS })
		g.off[v+1] = int32(len(g.nbrs))
		for _, nb := range pack {
			switch nb.Rel {
			case Customer:
				g.pcLinks++ // counted once, from the provider side
			case Peer:
				if int32(v) < nb.AS {
					g.peerLinks++
				}
			}
		}
	}
	if cycle := g.findPCCycle(); cycle {
		return nil, fmt.Errorf("topo: provider-customer relationship digraph contains a cycle")
	}
	return g, nil
}

// findPCCycle runs Kahn's algorithm over provider->customer edges.
func (g *Graph) findPCCycle() bool {
	n := g.N()
	indeg := make([]int, n) // number of providers
	for v := 0; v < n; v++ {
		for _, nb := range g.Neighbors(v) {
			if nb.Rel == Provider {
				indeg[v]++
			}
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, nb := range g.Neighbors(v) {
			if nb.Rel == Customer {
				indeg[nb.AS]--
				if indeg[nb.AS] == 0 {
					queue = append(queue, int(nb.AS))
				}
			}
		}
	}
	return seen != n
}

// Connected reports whether the underlying undirected graph is connected
// (ignoring relationship direction). An empty graph is connected.
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(v) {
			if !visited[nb.AS] {
				visited[nb.AS] = true
				count++
				stack = append(stack, int(nb.AS))
			}
		}
	}
	return count == n
}
