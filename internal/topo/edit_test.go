package topo

import "testing"

func TestRemoveLinks(t *testing.T) {
	g, err := NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RemoveLinks(g, []LinkRef{{A: 1, B: 0}, {A: 2, B: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Links() != g.Links()-2 {
		t.Fatalf("links = %d, want %d", g2.Links(), g.Links()-2)
	}
	if g2.HasLink(1, 0) || g2.HasLink(2, 3) {
		t.Error("removed links still present")
	}
	if !g2.HasLink(2, 0) || !g2.HasLink(1, 3) {
		t.Error("surviving links lost")
	}
	// Endpoint order must not matter, and missing links are ignored.
	g3, err := RemoveLinks(g, []LinkRef{{A: 0, B: 2}, {A: 9, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g3.HasLink(2, 0) || g3.Links() != g.Links()-1 {
		t.Errorf("reverse-order removal failed: %d links", g3.Links())
	}
	// Original untouched.
	if !g.HasLink(1, 0) {
		t.Error("RemoveLinks mutated the source graph")
	}
}

func TestRemoveLinksPreservesRelationships(t *testing.T) {
	g, err := Generate(GenConfig{N: 200, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RemoveLinks(g, []LinkRef{{A: 0, B: int(g.Neighbors(0)[0].AS)}})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for _, nb := range g2.Neighbors(v) {
			orig, ok := g.Rel(v, int(nb.AS))
			if !ok || orig != nb.Rel {
				t.Fatalf("relationship of %d-%d changed: %v -> %v", v, nb.AS, orig, nb.Rel)
			}
		}
	}
}
