package topo

import "testing"

func TestCustomerCone(t *testing.T) {
	// 0 provides 1 and 2; 1 provides 3; 2 peers with 4.
	g, err := NewBuilder(5).
		AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPeer(2, 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cone := CustomerCone(g, 0)
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(cone) != 4 {
		t.Fatalf("cone = %v, want {0,1,2,3}", cone)
	}
	for _, v := range cone {
		if !want[v] {
			t.Fatalf("cone contains %d (peer's side must be excluded)", v)
		}
	}
	if ConeSize(g, 3) != 1 {
		t.Errorf("stub cone size = %d, want 1", ConeSize(g, 3))
	}
	if ConeSize(g, 1) != 2 {
		t.Errorf("cone size of 1 = %d, want 2", ConeSize(g, 1))
	}
}

func TestCustomerConeDiamond(t *testing.T) {
	// Multi-homed customer must be counted once.
	g, err := NewBuilder(4).AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPC(2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := ConeSize(g, 0); got != 4 {
		t.Errorf("cone size = %d, want 4", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := NewBuilder(4).AddPC(0, 1).AddPC(0, 2).AddPC(0, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	h := DegreeHistogram(g)
	if h[3] != 1 || h[1] != 3 {
		t.Errorf("histogram = %v, want {3:1, 1:3}", h)
	}
}

func TestSamplePathStats(t *testing.T) {
	// A path graph 0-1-2-3 has diameter 3 from the endpoints.
	g, err := NewBuilder(4).AddPC(0, 1).AddPC(1, 2).AddPC(2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := SamplePathStats(g, 4, 1)
	if stats.Diameter != 3 {
		t.Errorf("diameter = %d, want 3", stats.Diameter)
	}
	if stats.AvgHops <= 1 || stats.AvgHops >= 3 {
		t.Errorf("avg hops = %v, want in (1, 3)", stats.AvgHops)
	}
	// Degenerate inputs.
	empty, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := SamplePathStats(empty, 3, 1); s.Diameter != 0 {
		t.Errorf("empty graph stats = %+v", s)
	}
	if s := SamplePathStats(g, 0, 1); s.Diameter != 0 {
		t.Errorf("zero samples stats = %+v", s)
	}
}

func TestGeneratedSmallWorld(t *testing.T) {
	g, err := Generate(GenConfig{N: 2000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	stats := SamplePathStats(g, 20, 2)
	// Internet-like graphs are small worlds: a couple thousand ASes should
	// sit within a handful of hops.
	if stats.Diameter > 12 {
		t.Errorf("diameter = %d; generator is not producing a small world", stats.Diameter)
	}
	if stats.AvgHops > 6 {
		t.Errorf("avg hops = %v, want < 6", stats.AvgHops)
	}
	// At least one tier-1 should have a giant customer cone (preferential
	// attachment concentrates customers on a few providers).
	maxCone := 0
	for v := 0; v < 12; v++ {
		if c := ConeSize(g, v); c > maxCone {
			maxCone = c
		}
	}
	if maxCone < g.N()/5 {
		t.Errorf("largest tier-1 cone = %d of %d; hierarchy broken", maxCone, g.N())
	}
}
