package topo

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the topology in Graphviz DOT format: provider->customer
// links as directed edges, peering as undirected (dir=none, dashed).
// Intended for small graphs and excerpts; `dot -Tsvg` makes the hierarchy
// visible at a glance.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	if name == "" {
		name = "topology"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if g.IsStub(v) {
			attrs = " [style=filled, fillcolor=lightgray]"
		}
		fmt.Fprintf(bw, "  %d%s;\n", v, attrs)
	}
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			switch {
			case nb.Rel == Customer:
				fmt.Fprintf(bw, "  %d -> %d;\n", v, nb.AS)
			case nb.Rel == Peer && int32(v) < nb.AS:
				fmt.Fprintf(bw, "  %d -> %d [dir=none, style=dashed];\n", v, nb.AS)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
