package topo

import "math/rand"

// CustomerCone returns v's customer cone — v plus every AS reachable by
// repeatedly descending provider-to-customer edges — in ascending order of
// discovery. The cone is the set of destinations v can reach through
// customer routes, which is what bounds MIFO's downhill alternatives.
func CustomerCone(g *Graph, v int) []int {
	visited := map[int]bool{v: true}
	cone := []int{v}
	stack := []int{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(x) {
			if nb.Rel == Customer && !visited[int(nb.AS)] {
				visited[int(nb.AS)] = true
				cone = append(cone, int(nb.AS))
				stack = append(stack, int(nb.AS))
			}
		}
	}
	return cone
}

// ConeSize returns the size of v's customer cone.
func ConeSize(g *Graph, v int) int { return len(CustomerCone(g, v)) }

// DegreeHistogram returns counts of ASes per degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// PathStats summarizes hop distances in the undirected topology.
type PathStats struct {
	// Diameter is the largest eccentricity observed from the sampled
	// sources (a lower bound on the true diameter).
	Diameter int
	// AvgHops is the mean hop distance from the sampled sources to every
	// reachable AS.
	AvgHops float64
}

// SamplePathStats BFSes from `samples` random sources (seeded) and
// aggregates hop distances. The real Internet graph has a small diameter
// despite its size — the property the paper's Section VI highlights.
func SamplePathStats(g *Graph, samples int, seed int64) PathStats {
	n := g.N()
	if n == 0 || samples <= 0 {
		return PathStats{}
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)[:samples]

	var stats PathStats
	var totalHops, totalPairs float64
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for _, src := range order {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = queue[:0]
		queue = append(queue, src)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, nb := range g.Neighbors(x) {
				if dist[nb.AS] < 0 {
					dist[nb.AS] = dist[x] + 1
					queue = append(queue, int(nb.AS))
				}
			}
		}
		for v, d := range dist {
			if v == src || d < 0 {
				continue
			}
			totalHops += float64(d)
			totalPairs++
			if d > stats.Diameter {
				stats.Diameter = d
			}
		}
	}
	if totalPairs > 0 {
		stats.AvgHops = totalHops / totalPairs
	}
	return stats
}
