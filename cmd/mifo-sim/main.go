// mifo-sim regenerates the paper's simulation figures (Section IV).
//
// Usage:
//
//	mifo-sim -exp fig5a                 # one experiment at default scale
//	mifo-sim -exp all -n 2000 -flows 20000
//	mifo-sim -exp table1 -n 44340       # paper-scale Table I
//
// Output is gnuplot-style rows, one "# name" block per curve.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/jsonl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/topo"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, fig5a, fig5b, fig5c, fig6a, fig6b, fig6c, fig7, fig8, fig9, resilience, strategy, overhead, errorbars, sensitivity, paperscale, all")
		n        = flag.Int("n", 1000, "topology size (ASes); the paper uses 44340")
		flows    = flag.Int("flows", 5000, "number of flows; the paper uses 1e6")
		topoFile = flag.String("topo", "", "read the topology from this file (mifo-topogen -o) instead of generating it")
		dests    = flag.String("dests", "12", "paperscale: routed destinations — a count, or 'all' for the full-table memory run")
		streamN  = flag.Int("stream-flows", 0, "paperscale: flows pulled through the streaming simulator (0 = -flows)")
		memMB    = flag.Int("mem-budget-mb", 0, "paperscale: fail when peak RSS exceeds this many MB (0 = no budget)")
		pairs    = flag.Int("pairs", 1000, "sampled AS pairs for fig7")
		rate     = flag.Float64("rate", 0, "flow arrival rate per second (0 = auto-scale the paper's 100/s)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		outDir   = flag.String("o", "", "also write each experiment's curves as gnuplot data files into this directory")
		dbgAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :6061) while experiments run")
		fltLog   = flag.String("flight-log", "", "record every simulated path as a JSONL flight record here (analyse with mifo-trace)")
		fltRate  = flag.Float64("flight-sample", 1.0, "fraction of flows the flight recorder samples (0..1]")
		fltBatch = flag.Int("flight-batch", 0, "records per Merkle-sealed batch in the flight log (0 = default 256)")
		fltFlush = flag.Duration("flight-flush", 0, "seal a partial flight-log batch after this long (0 = default 50ms)")
		fltPlain = flag.Bool("flight-plain", false, "stream flight records without Merkle seals (not verifiable with mifo-trace -verify)")
		spanLog  = flag.String("span-log", "", "trace injected link failures to data-plane consistency as JSONL spans here (analyse with mifo-conv)")
		tsdbLog  = flag.String("tsdb-log", "", "dump per-link utilization/deflection/offload time series as JSONL here (analyse with mifo-top -log)")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mifo-sim:", err)
			os.Exit(1)
		}
	}

	// Experiment-progress metrics; live on -debug-addr so a long paper-scale
	// run can be watched (and pprof'd) from outside.
	reg := obs.NewRegistry()
	expDone := reg.CounterVec("sim_experiments_total", "experiments finished, by outcome", "outcome")
	expDur := reg.Histogram("sim_experiment_seconds", "wall-clock duration of one experiment",
		[]float64{0.1, 0.5, 1, 5, 15, 60, 300, 1800})
	// The embedded TSDB collects per-link utilization, deflection and
	// offload series from every simulation run; it backs both the
	// -tsdb-log dump and the live /debug/tsdb endpoint.
	var db *tsdb.Store
	if *tsdbLog != "" || *dbgAddr != "" {
		db = tsdb.NewStore(tsdb.Options{})
	}
	if *dbgAddr != "" {
		srv, err := obs.ServeDebug(*dbgAddr, reg, nil, db)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mifo-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("# debug server on %s (/metrics, /debug/vars, /debug/tsdb/, /debug/pprof/)\n", srv.URL())
		defer srv.Close()
	}

	o := experiments.Options{N: *n, Flows: *flows, PairSamples: *pairs, ArrivalRate: *rate, Seed: *seed, Workers: *workers, TSDB: db}
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mifo-sim:", err)
			os.Exit(1)
		}
		g, _, err := topo.Parse(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mifo-sim: %s: %v\n", *topoFile, err)
			os.Exit(1)
		}
		o.Graph, o.N = g, g.N()
	}
	ps := experiments.PaperScaleConfig{StreamFlows: *streamN, MemBudgetMB: *memMB}
	if *dests == "all" {
		ps.AllDests = true
	} else {
		k, err := strconv.Atoi(*dests)
		if err != nil || k <= 0 {
			fmt.Fprintf(os.Stderr, "mifo-sim: -dests must be a positive count or 'all', got %q\n", *dests)
			os.Exit(1)
		}
		ps.Dests = k
	}

	// Flight recorder: every simulated path is recorded as a JSONL record
	// and audited online against MIFO's loop/valley invariants. The log is
	// what mifo-trace consumes. finishFlight runs after the experiment
	// loop, before any exit, so the log is always flushed.
	finishFlight := func() bool { return true }
	if *fltLog != "" {
		sink, err := jsonl.Create(*fltLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mifo-sim:", err)
			os.Exit(1)
		}
		rec := audit.NewRecorder(audit.Options{
			Sample: *fltRate, Writer: sink, Registry: reg,
			BatchSize: *fltBatch, FlushInterval: *fltFlush, Plain: *fltPlain,
		})
		o.Recorder = rec
		finishFlight = func() bool {
			if err := rec.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: flight recorder:", err)
			}
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: flight log:", err)
			}
			st := rec.Stats()
			fmt.Printf("# flight log: %d records in %d sealed batches (%d deflections, %d invariant violations, %d shed) -> %s\n",
				st.Records, st.BatchesSealed, st.Deflections, st.Violations, st.RingDropped, *fltLog)
			if st.Violations > 0 {
				fmt.Fprintf(os.Stderr, "mifo-sim: AUDIT FAILURE: %d invariant violations recorded\n", st.Violations)
			}
			return st.Violations == 0
		}
	}

	// Convergence tracer: every injected link event in span-aware
	// experiments (resilience) is traced from failure injection to
	// data-plane consistency. The log is what mifo-conv consumes.
	finishSpans := func() bool { return true }
	if *spanLog != "" {
		sink, err := jsonl.Create(*spanLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mifo-sim:", err)
			os.Exit(1)
		}
		tr := span.New(span.Options{Writer: sink, Registry: reg})
		o.Spans = tr
		finishSpans = func() bool {
			ok := true
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: span tracer:", err)
				ok = false
			}
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: span log:", err)
				ok = false
			}
			st := tr.Stats()
			fmt.Printf("# span log: %d spans across %d failure events (%d shed) -> %s\n",
				st.Records, st.Roots, st.Dropped, *spanLog)
			return ok
		}
	}

	// TSDB dump: the whole run's time series, written once after the
	// experiment loop. The log is what mifo-top -log consumes; the episode
	// summary printed here uses the same analyzer.
	finishTSDB := func() bool { return true }
	if *tsdbLog != "" {
		finishTSDB = func() bool {
			sink, err := jsonl.Create(*tsdbLog)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: tsdb log:", err)
				return false
			}
			ok := true
			if err := db.WriteDump(sink); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: tsdb log:", err)
				ok = false
			}
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-sim: tsdb log:", err)
				ok = false
			}
			rep := tsdb.AnalyzeStore(db, tsdb.EpisodeSpec{})
			fmt.Printf("# tsdb log: %d series scanned, %d congestion episodes on %d links (%d deflections, %.3g offloaded bits) -> %s\n",
				rep.SeriesScanned, len(rep.Episodes), rep.LinksWithEpisodes,
				rep.TotalDeflections, rep.TotalOffloadBits, *tsdbLog)
			return ok
		}
	}

	list := strings.Split(*exp, ",")
	if *exp == "all" {
		list = []string{"table1", "fig7", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig8", "fig9", "resilience", "strategy", "overhead"}
	}
	failed := 0
	for _, e := range list {
		start := time.Now()
		err := run(strings.TrimSpace(e), o, *outDir, ps)
		expDur.Observe(time.Since(start).Seconds())
		if err != nil {
			// Keep going: one broken experiment must not suppress the rest
			// of the suite's output, but the run as a whole still fails.
			fmt.Fprintf(os.Stderr, "mifo-sim: %s: %v\n", e, err)
			expDone.With("error").Inc()
			failed++
			continue
		}
		expDone.With("ok").Inc()
		fmt.Printf("# [%s done in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}
	clean := finishFlight()
	if !finishSpans() {
		clean = false
	}
	if !finishTSDB() {
		clean = false
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mifo-sim: %d/%d experiments failed\n", failed, len(list))
		os.Exit(1)
	}
	if !clean {
		os.Exit(1)
	}
}

// saveSeries writes curves to <dir>/<name>.dat in gnuplot block format.
func saveSeries(dir, name string, series ...metrics.Series) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".dat"))
	if err != nil {
		return err
	}
	if err := metrics.WriteGnuplot(f, series...); err != nil {
		f.Close() //mifolint:ignore droppederr best-effort close on the error path; the write error wins
		return err
	}
	return f.Close()
}

func run(exp string, o experiments.Options, outDir string, ps experiments.PaperScaleConfig) error {
	switch exp {
	case "paperscale":
		// The paper-scale memory/convergence run. Not part of "all": it is
		// sized for its own process (peak RSS is a process-lifetime mark).
		r, err := experiments.RunPaperScale(o, ps)
		if err != nil {
			return err
		}
		printPaperScale(r)
		if r.OverBudget {
			return fmt.Errorf("peak RSS %.0f MiB exceeds the %d MiB budget",
				float64(r.PeakRSS)/(1<<20), r.BudgetBytes>>20)
		}
	case "table1":
		sum, err := experiments.TableI(o)
		if err != nil {
			return err
		}
		fmt.Print(sum)

	case "fig7":
		f, err := experiments.RunFig7(o)
		if err != nil {
			return err
		}
		fmt.Println("== Fig. 7: Available Paths Comparison ==")
		fmt.Println("# x: percentage of node pairs, y: paths per pair")
		for _, s := range f.Series {
			fmt.Print(s)
		}
		fmt.Printf("# median paths: MIFO(100%%)=%.0f MIRO(100%%)=%.0f\n", f.MedianMIFO100, f.MedianMIRO100)
		if err := saveSeries(outDir, "fig7", f.Series...); err != nil {
			return err
		}

	case "fig5a", "fig5b", "fig5c":
		deploy := map[string]float64{"fig5a": 1.0, "fig5b": 0.5, "fig5c": 0.1}[exp]
		c, err := experiments.RunFig5(o, deploy)
		if err != nil {
			return err
		}
		fmt.Printf("== Fig. 5 (%s): Throughput CDF at %.0f%% deployment, uniform traffic ==\n", exp, 100*deploy)
		printComparison(c)
		if err := saveSeries(outDir, exp, c.Series...); err != nil {
			return err
		}

	case "fig6a", "fig6b", "fig6c":
		alpha := map[string]float64{"fig6a": 0.8, "fig6b": 1.0, "fig6c": 1.2}[exp]
		c, err := experiments.RunFig6(o, alpha)
		if err != nil {
			return err
		}
		fmt.Printf("== Fig. 6 (%s): Throughput CDF, power-law alpha=%.1f, 50%% deployment ==\n", exp, alpha)
		printComparison(c)
		if err := saveSeries(outDir, exp, c.Series...); err != nil {
			return err
		}

	case "fig8":
		f, err := experiments.RunFig8(o)
		if err != nil {
			return err
		}
		fmt.Println("== Fig. 8: Traffic Offload on Alternative Paths ==")
		fmt.Println("# x: % of ASes deploying MIFO, y: % of flows on alternative paths")
		for _, r := range f.Rows {
			fmt.Printf("%.0f%%\t%.1f\n", r.X, r.Y)
		}
		if err := saveSeries(outDir, "fig8", metrics.Series{Name: "offload", Rows: f.Rows}); err != nil {
			return err
		}

	case "fig9":
		f, err := experiments.RunFig9(o)
		if err != nil {
			return err
		}
		fmt.Println("== Fig. 9: Path Switch Distribution (flows that switched) ==")
		fmt.Println("# switches  count  share")
		fmt.Print(f.Histogram)
		fmt.Printf("# switched once: %.1f%%  at most twice: %.1f%% (paper: 67.7%% / 97.5%%)\n",
			100*f.OnceFraction, 100*f.AtMostTwiceFraction)

	case "resilience":
		// Extension beyond the paper: fail the busiest link mid-run.
		r, err := experiments.RunResilience(o)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: link-failure resilience (busiest link fails mid-run) ==")
		fmt.Printf("# failed link: AS %d - AS %d\n", r.FailedLink[0], r.FailedLink[1])
		fmt.Printf("# %-6s %9s %12s %11s %8s %10s\n",
			"policy", "affected", "mean stall", "max stall", "forever", "mean Mbps")
		for _, row := range r.Rows {
			fmt.Printf("  %-6s %9d %10.3fs %9.3fs %8d %10.0f\n",
				row.Policy, row.AffectedFlows, row.MeanStallSec, row.MaxStallSec,
				row.StalledForever, row.MeanMbps)
		}
		// Route-recompute accounting: every policy shares the same failure
		// schedule, so one row tells the incremental-routing story. A
		// from-scratch rebuild would run full + incremental + skipped
		// computes per event; the incremental table only runs the dirty ones.
		for _, row := range r.Rows {
			rt := row.Routing
			total := rt.IncrementalComputes + rt.CleanSkipped
			saved := 0.0
			if total > 0 {
				saved = 100 * float64(rt.CleanSkipped) / float64(total)
			}
			fmt.Printf("# %s route computes: %d full (intact), %d incremental over %d link events (%d of %d skipped as provably clean, %.1f%% saved)\n",
				row.Policy, rt.FullComputes, rt.IncrementalComputes, rt.LinkEvents,
				rt.CleanSkipped, total, saved)
		}

	case "strategy":
		// Extension beyond the paper: who should deploy MIFO first?
		s, err := experiments.RunStrategy(o)
		if err != nil {
			return err
		}
		if err := saveSeries(outDir, "strategy", s.Series()...); err != nil {
			return err
		}
		fmt.Println("== Extension: adopter strategy (random vs top-degree ASes) ==")
		fmt.Printf("# %-8s %-24s %-24s\n", "deploy", "random (>=500 / offload)", "top-degree (>=500 / offload)")
		for i := range s.Random {
			fmt.Printf("  %.0f%%      %5.1f%% / %5.1f%%          %5.1f%% / %5.1f%%\n",
				100*s.Random[i].Deployment,
				100*s.Random[i].AtLeast500, 100*s.Random[i].Offload,
				100*s.TopDegree[i].AtLeast500, 100*s.TopDegree[i].Offload)
		}

	case "errorbars":
		// Extension: the Fig. 5 headline with multi-seed error bars.
		r, err := experiments.RunRepeated(o, 1.0, 5)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: Fig. 5(a) headline over 5 seeds (mean ± std) ==")
		fmt.Printf("  %-6s %-18s %-18s\n", "policy", ">=500 Mbps (%)", "mean Mbps")
		for _, name := range []string{"BGP", "MIRO", "MIFO"} {
			fmt.Printf("  %-6s %-18s %-18s\n", name,
				r.AtLeast500[name].String(), r.MeanMbps[name].String())
		}

	case "sensitivity":
		// Extension: the control-knob sweeps behind the ablations.
		s, err := experiments.RunSensitivity(o)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: MIFO control-knob sensitivity ==")
		fmt.Println("# congestion threshold sweep: x | pct >=500Mbps | pct offload")
		for _, r := range s.Thresholds {
			fmt.Printf("  %.2f\t%5.1f\t%5.1f\n", r.X, r.AtLeast500, r.Offload)
		}
		fmt.Println("# control interval sweep (s): x | pct >=500Mbps | pct offload")
		for _, r := range s.Intervals {
			fmt.Printf("  %.3f\t%5.1f\t%5.1f\n", r.X, r.AtLeast500, r.Offload)
		}

	case "overhead":
		// Extension: the control-plane cost behind Section II-B's
		// "zero overhead" claim, measured with the message-level BGP sim.
		ov, err := experiments.RunOverhead(o)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: control-plane overhead of multipath schemes ==")
		fmt.Printf("  baseline BGP:  %.0f UPDATE messages to converge one prefix\n", ov.BGPUpdatesPerPrefix)
		fmt.Printf("  MIRO:          +%.1f negotiation messages per (src,dst) pair using alternates\n", ov.MIROMessagesPerPair)
		fmt.Printf("  MIFO:          +%.0f messages (alternatives come from the local RIB)\n", ov.MIFOExtraMessages)
		fmt.Printf("  BGP reconvergence after a link failure: %.2f s mean — the outage window\n", ov.ReconvergenceSec)
		fmt.Println("  MIFO's data-plane failover bridges (cf. -exp resilience).")

	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func printPaperScale(r *experiments.PaperScale) {
	mib := func(b int64) float64 { return float64(b) / (1 << 20) }
	fmt.Println("== Paper scale: Internet-size routing with memory-compact tables ==")
	fmt.Printf("# topology: %d ASes, %d links; adjacency %.1f MiB (%.1f B/link)\n",
		r.Nodes, r.Links, mib(r.GraphMem.TotalBytes), r.GraphMem.BytesPerLink)
	mode := "flow simulation"
	if r.TableOnly {
		mode = "table only"
	}
	fmt.Printf("# destinations: %d (%s)\n", r.Dests, mode)
	fmt.Printf("  full table build:   %.2fs (%d destinations)\n", r.BuildSec, r.TableMem.Dests)
	fmt.Printf("  table memory:       %.1f MiB packed + %.2f MiB overflow = %.1f B/AS/dest (%.0f B/dest; arena retained %.1f MiB)\n",
		mib(r.TableMem.PackedBytes), mib(r.TableMem.OverflowBytes),
		r.TableMem.BytesPerEntry, r.TableMem.BytesPerDest, mib(r.TableMem.ArenaRetainedBytes))
	fmt.Printf("  failed link:        AS %d - AS %d\n", r.FailedLink[0], r.FailedLink[1])
	if r.TableOnly {
		fmt.Printf("  LinkDown repair:    %.3fs   LinkUp repair: %.3fs (incremental)\n", r.DownSec, r.UpSec)
	} else if s := r.Stream; s != nil {
		fmt.Printf("  streaming sim:      %d flows in %.2fs — %d routable, %d completed, %d stalled forever\n",
			s.Flows, r.SimSec, s.Routable(), s.Completed, s.StalledForever)
		fmt.Printf("  flow memory:        %d peak flow slots for %d peak active flows (of %d total)\n",
			s.PeakFlowSlots, s.PeakActive, s.Flows)
		fmt.Printf("  throughput:         mean %.0f Mbps, %.1f%% of flows >= 500 Mbps, offload %.1f%%\n",
			s.MeanThroughputMbps(), 100*s.FractionAtLeastMbps(500), 100*s.OffloadFraction())
	}
	fmt.Printf("  route computes:     %d full, %d incremental over %d link events, %d skipped as provably clean (%.1f%% saved)\n",
		r.Routing.FullComputes, r.Routing.IncrementalComputes, r.Routing.LinkEvents,
		r.Routing.CleanSkipped, r.SkippedPct)
	verdict := ""
	if r.BudgetBytes > 0 {
		verdict = fmt.Sprintf(" — budget %d MiB: ", r.BudgetBytes>>20)
		if r.OverBudget {
			verdict += "EXCEEDED"
		} else {
			verdict += "ok"
		}
	}
	fmt.Printf("  peak RSS:           %.0f MiB (%s)%s\n", mib(r.PeakRSS), r.RSSSource, verdict)
}

func printComparison(c *experiments.ThroughputComparison) {
	fmt.Println("# x: throughput (Mbps), y: CDF (%)")
	for _, s := range c.Series {
		fmt.Print(s)
	}
	fmt.Println("# flows reaching >= 500 Mbps (half of link capacity):")
	for _, s := range c.Series {
		cdf := c.Results[s.Name].ThroughputCDF()
		fmt.Printf("#   %-22s %.1f%%  (offload %.1f%%, mean %.0f Mbps, median %.0f Mbps)\n", s.Name,
			100*c.AtLeast500[s.Name], 100*c.Results[s.Name].OffloadFraction(),
			cdf.Mean(), cdf.Quantile(0.5))
	}
}
