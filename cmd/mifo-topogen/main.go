// mifo-topogen generates a synthetic Internet-like AS topology, prints its
// Table I attributes, and optionally writes it in the CAIDA-style
// relationship format that the rest of the toolchain can parse.
//
// Usage:
//
//	mifo-topogen -n 44340 -stats            # paper-scale Table I
//	mifo-topogen -n 2000 -o topo.txt        # write a topology file
//	mifo-topogen -in topo.txt -stats        # stats of an existing file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/topo"
)

func main() {
	var (
		n      = flag.Int("n", 2000, "number of ASes to generate")
		seed   = flag.Int64("seed", 1, "PRNG seed")
		out    = flag.String("o", "", "write the topology to this file ('-' for stdout)")
		in     = flag.String("in", "", "read a topology file instead of generating")
		stats  = flag.Bool("stats", true, "print Table I attributes")
		detail = flag.Bool("detail", false, "also print path-length stats and the largest customer cones")
		dot    = flag.String("dot", "", "write a Graphviz rendering to this file (small topologies)")
	)
	flag.Parse()

	var g *topo.Graph
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		g, _, err = topo.Parse(f)
	default:
		g, err = topo.Generate(topo.GenConfig{N: *n, Seed: *seed})
	}
	if err != nil {
		fatal(err)
	}

	if *stats {
		sum, err := experiments.TableI(experiments.Options{N: g.N(), Seed: *seed, Graph: g})
		if *in != "" {
			// For a parsed file, report the parsed graph's stats directly.
			s := g.Stats()
			fmt.Printf("nodes=%d links=%d p2c=%d p2p=%d avg-degree=%.2f connected=%v\n",
				s.Nodes, s.Links, s.PCLinks, s.PeerLinks, s.AvgDegree, g.Connected())
		} else {
			if err != nil {
				fatal(err)
			}
			fmt.Print(sum)
		}
		m := g.MemStats()
		fmt.Printf("adjacency arena: %.2f MiB CSR (%.1f B/link: %.2f MiB offsets + %.2f MiB neighbors)\n",
			float64(m.TotalBytes)/(1<<20), m.BytesPerLink,
			float64(m.OffsetBytes)/(1<<20), float64(m.NeighborBytes)/(1<<20))
	}

	if *detail {
		ps := topo.SamplePathStats(g, 16, *seed)
		fmt.Printf("sampled diameter >= %d, avg AS-path length %.2f hops\n", ps.Diameter, ps.AvgHops)
		best, size := 0, 0
		limit := g.N()
		if limit > 64 {
			limit = 64 // cones of the well-connected head suffice
		}
		for v := 0; v < limit; v++ {
			if c := topo.ConeSize(g, v); c > size {
				best, size = v, c
			}
		}
		fmt.Printf("largest customer cone (first %d ASes): AS %d with %d ASes (%.0f%%)\n",
			limit, best, size, 100*float64(size)/float64(g.N()))
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := topo.WriteDOT(f, g, "mifo"); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, createErr := os.Create(*out)
			if createErr != nil {
				fatal(createErr)
			}
			w = f
		}
		if err := topo.Write(w, g, nil); err != nil {
			fatal(err)
		}
		if w != os.Stdout {
			if err := w.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-topogen:", err)
	os.Exit(1)
}
