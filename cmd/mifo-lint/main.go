// Command mifo-lint runs the mifolint analyzer suite (internal/lint): the
// static enforcement of the repository's concurrency and hot-path
// contracts — generation immutability of the versioned FIB and LPM trie,
// the //mifo:hotpath allocation/lock budget, obs metric naming,
// lock-scope hygiene, the //mifo:ring publish protocol (ringorder), the
// builder-publish freeze of arena memory (arenafreeze), and goroutine
// lifecycle ownership (lifecycle) — plus native ports of the non-default
// vet passes shadow, unusedwrite, nilness, and the dropped-error sweep.
//
// Two modes:
//
//	mifo-lint [-json|-github] [packages...]
//
// Standalone: loads the named packages (default ./...) with go/types
// against build-cache export data and analyzes them in one run, which
// enables the whole-tree checks (duplicate metric registration, the
// transitive hot-path budget, cross-package lifecycle and freeze facts).
// Exits 1 when findings remain. -json emits the findings as a stable
// {file,line,col,analyzer,message} array (the CI artifact); -github
// renders them as GitHub Actions ::error annotations.
//
//	go vet -vettool=$(which mifo-lint) ./...
//
// Vet tool: speaks cmd/go's unitchecker protocol (-V=full versioning and
// one *.cfg invocation per package), so the suite plugs into `go vet`
// exactly like an x/tools multichecker binary. Per-unit invocation means
// the whole-tree checks see one package at a time in this mode; `make
// lint` uses the standalone mode for full coverage.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

// finding is the stable JSON shape of one diagnostic, consumed by the CI
// lint step (and anything else that wants machine-readable findings).
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	// cmd/go probes vet tools with `tool -V=full` before every run; the
	// reply has to carry a stable build identifier because it keys vet's
	// result cache.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	// cmd/go also probes `tool -flags` to learn which vet flags the tool
	// accepts (JSON array). mifolint takes none in unit mode.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Unit mode: cmd/go invokes `tool [flags] <file>.cfg` per package.
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		os.Exit(unitMode(os.Args[len(os.Args)-1]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON objects {file,line,col,analyzer,message}")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	dir := flag.String("C", ".", "directory to run in (module root)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mifo-lint [-json] [-github] [-C dir] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	start := time.Now()
	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.Suite())

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *github:
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n",
				f.File, f.Line, f.Col, f.Analyzer, annotationEscape(f.Message))
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	fmt.Fprintf(os.Stderr, "mifo-lint: %d package(s), %d finding(s) in %s\n",
		len(pkgs), len(diags), time.Since(start).Round(time.Millisecond))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relPath shortens an absolute path to the current directory, keeping
// output clickable but compact (and stable for the JSON artifact).
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// annotationEscape applies the GitHub Actions workflow-command escaping
// to an annotation message.
func annotationEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// printVersion answers cmd/go's -V=full probe in the format its toolID
// parser expects: "<name> version <...>" with a buildID derived from the
// binary's own contents, so editing the linter invalidates vet's cache.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f) //mifolint:ignore droppederr a short read only weakens the cache key, never correctness
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-lint: reading own binary:", err)
			}
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}
