// Command mifo-lint runs the mifolint analyzer suite (internal/lint): the
// static enforcement of the repository's concurrency and hot-path
// contracts — generation immutability of the versioned FIB and LPM trie,
// the //mifo:hotpath allocation/lock budget, obs metric naming, and
// lock-scope hygiene — plus native ports of the non-default vet passes
// shadow, unusedwrite, nilness, and the dropped-error sweep.
//
// Two modes:
//
//	mifo-lint [packages...]
//
// Standalone: loads the named packages (default ./...) with go/types
// against build-cache export data and analyzes them in one run, which
// enables the whole-tree checks (duplicate metric registration, the
// transitive hot-path budget). Exits 1 when findings remain.
//
//	go vet -vettool=$(which mifo-lint) ./...
//
// Vet tool: speaks cmd/go's unitchecker protocol (-V=full versioning and
// one *.cfg invocation per package), so the suite plugs into `go vet`
// exactly like an x/tools multichecker binary. Per-unit invocation means
// the whole-tree checks see one package at a time in this mode; `make
// lint` uses the standalone mode for full coverage.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// cmd/go probes vet tools with `tool -V=full` before every run; the
	// reply has to carry a stable build identifier because it keys vet's
	// result cache.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	// cmd/go also probes `tool -flags` to learn which vet flags the tool
	// accepts (JSON array). mifolint takes none in unit mode.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Unit mode: cmd/go invokes `tool [flags] <file>.cfg` per package.
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		os.Exit(unitMode(os.Args[len(os.Args)-1]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	dir := flag.String("C", ".", "directory to run in (module root)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mifo-lint [-json] [-C dir] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.Suite())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(relativize(d.String()))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mifo-lint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// relativize shortens absolute paths in a rendered diagnostic to the
// current directory, keeping output clickable but compact.
func relativize(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	if rel, err := filepath.Rel(wd, strings.SplitN(s, ":", 2)[0]); err == nil && !strings.HasPrefix(rel, "..") {
		if i := strings.Index(s, ":"); i >= 0 {
			return rel + s[i:]
		}
	}
	return s
}

// printVersion answers cmd/go's -V=full probe in the format its toolID
// parser expects: "<name> version <...>" with a buildID derived from the
// binary's own contents, so editing the linter invalidates vet's cache.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f) //mifolint:ignore droppederr a short read only weakens the cache key, never correctness
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mifo-lint: reading own binary:", err)
			}
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}
