package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig is the per-package JSON configuration cmd/go hands a vet tool
// (the unitchecker protocol). Field names are fixed by cmd/go.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitMode analyzes one package as directed by a vet .cfg file and
// returns the process exit code: 0 clean, 2 findings, 1 tool failure.
// Whole-tree checks (obsnames duplicates, the transitive hot-path budget)
// degrade to per-package scope here; `make lint` runs the standalone mode
// for the full-tree versions.
func unitMode(cfgPath string) int {
	data, readErr := os.ReadFile(cfgPath)
	if readErr != nil {
		fmt.Fprintln(os.Stderr, "mifo-lint:", readErr)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mifo-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file to exist even though mifolint's
	// cross-package facts only flow in standalone mode.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "mifo-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, parseErr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if parseErr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "mifo-lint:", parseErr)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := lint.NewInfo()
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mifo-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	found := 0
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Suite()) {
		// go vet sweeps test variants through the tool as well; the
		// contracts bind shipped code, so findings inside _test.go files
		// are dropped to match the standalone mode's scope.
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, d.String())
		found++
	}
	if found > 0 {
		return 2
	}
	return 0
}
