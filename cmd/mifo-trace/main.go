// mifo-trace analyses a packet flight-recorder log (JSONL, produced by
// mifo-sim -flight-log or any audit.Recorder sink) entirely offline: the
// report is recomputed from the records alone, so it doubles as a
// cross-check of the live obs counters.
//
// Usage:
//
//	mifo-sim -exp fig8 -flight-log flight.jsonl
//	mifo-trace flight.jsonl                 # aggregate report
//	mifo-trace -top 20 flight.jsonl         # wider per-prefix table
//	mifo-trace -packet 17 flight.jsonl      # hop-by-hop drill-down of record 17
//	mifo-trace -flow 42 flight.jsonl        # all journeys of flow 42
//	mifo-trace -verify flight.jsonl         # recompute the Merkle seal chain
//	mifo-trace -verify -head <hex> f.jsonl  # ... and pin the final seal
//	cat flight.jsonl | mifo-trace           # reads stdin without a file arg
//
// Exit status is 2 when the log contains invariant violations, so the
// auditor can gate CI: `mifo-trace flight.jsonl || fail`.
//
// -verify re-derives every batch's Merkle root and seal from the records
// alone and fails (exit 1) on any mutated, dropped, or reordered record,
// any broken seal chain, or a log truncated mid-batch. Whole trailing
// batches can only be detected against a pinned head: pass the final
// seal printed by an earlier verification as -head.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/audit"
)

func main() {
	var (
		top    = flag.Int("top", 10, "rows in the per-prefix table")
		packet = flag.Int64("packet", -1, "drill into one record by its sequence number")
		flow   = flag.Int64("flow", -1, "drill into every journey of one flow ID")
		verify = flag.Bool("verify", false, "verify the log's Merkle seal chain instead of reporting")
		head   = flag.String("head", "", "with -verify: require the final seal to equal this hex digest")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one log file argument, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	if *verify {
		res, err := audit.VerifyLog(in)
		if err != nil {
			fatal(fmt.Errorf("%s: verification FAILED: %w", name, err))
		}
		if *head != "" && !strings.EqualFold(*head, res.Head) {
			fatal(fmt.Errorf("%s: head seal %s does not match pinned -head %s (trailing batches removed, or wrong log)",
				name, res.Head, *head))
		}
		fmt.Printf("%s: OK: %d records in %d sealed batches\nhead seal: %s\n",
			name, res.Records, res.Batches, res.Head)
		return
	}
	if *head != "" {
		fatal(fmt.Errorf("-head requires -verify"))
	}

	if *packet >= 0 || *flow >= 0 {
		if err := drill(in, *packet, *flow); err != nil {
			fatal(err)
		}
		return
	}

	sum, err := audit.Summarize(in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s\n", name)
	sum.Format(os.Stdout, *top)
	if sum.TotalViolations > 0 {
		os.Exit(2)
	}
}

// drill streams the log and pretty-prints every matching record. A -packet
// filter matches the record's sequence number; -flow matches its flow ID
// (all packets/paths of that flow). Both given means both must match.
func drill(in io.Reader, packet, flow int64) error {
	matched := 0
	err := audit.ReadRecords(in, func(rec audit.Record) error {
		if packet >= 0 && int64(rec.Seq) != packet {
			return nil
		}
		if flow >= 0 && rec.Flow != uint64(flow) {
			return nil
		}
		if matched > 0 {
			fmt.Println()
		}
		audit.FormatRecord(os.Stdout, rec)
		matched++
		return nil
	})
	if err != nil {
		return err
	}
	if matched == 0 {
		return fmt.Errorf("no matching record (packet=%d flow=%d)", packet, flow)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-trace:", err)
	os.Exit(1)
}
