// mifo-router traces the MIFO forwarding engine (Algorithm 1) hop by hop on
// the paper's Fig. 2(a) scenario: three peering ASes over a shared customer,
// with configurable congestion. It prints every router's decision — tagging,
// deflection, tag-check — so the loop-breaking mechanism can be watched.
//
// Usage:
//
//	mifo-router                      # no congestion: direct default path
//	mifo-router -congest 1,2,3      # congest all defaults: tag-check drops
//	mifo-router -congest 1          # deflection via a peer succeeds
//	mifo-router -congest 1,2,3 -no-tagcheck   # the loop MIFO prevents
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/topo"
)

func main() {
	var (
		congest    = flag.String("congest", "", "comma-separated ASes whose default link to AS 0 is congested")
		src        = flag.Int("src", 1, "source AS (1, 2 or 3)")
		noTagCheck = flag.Bool("no-tagcheck", false, "disable the valley-free tag-check (demonstrates the loop)")
		dbgAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :6062)")
		linger     = flag.Duration("linger", 0, "keep running (and serving -debug-addr) this long after the trace prints")
	)
	flag.Parse()

	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		fatal(err)
	}
	dep := core.NewDeployment(g, core.Config{})
	if *dbgAddr != "" {
		// The deployment's FIB-publication metrics (core_fib_commit_seconds,
		// core_fib_generation) land on the same registry the debug mux
		// scrapes, so the install and refresh below are observable.
		reg := obs.NewRegistry()
		dep.Instrument(reg)
		srv, err := obs.ServeDebug(*dbgAddr, reg, nil, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on %s (/metrics, /debug/vars, /debug/pprof/)\n", srv.URL())
		defer srv.Close()
	}
	dep.InstallDestination(bgp.Compute(g, 0))

	for _, tok := range strings.Split(*congest, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		as, err := strconv.Atoi(tok)
		if err != nil || as < 1 || as > 3 {
			fatal(fmt.Errorf("bad -congest AS %q (want 1, 2 or 3)", tok))
		}
		if err := dep.SetLinkLoad(as, 0, 1e9); err != nil {
			fatal(err)
		}
		fmt.Printf("link AS%d -> AS0 congested\n", as)
	}
	dep.Refresh()
	// Each router's FIB is a sequence of immutable generations; the daemon's
	// install and refresh each published exactly one. Showing the counter
	// makes the batched-commit behavior visible from the CLI.
	fmt.Println("\nFIB state after daemon refresh:")
	for _, r := range dep.Net.Routers {
		fmt.Printf("  router %d (AS %d): %d entries, generation %d\n",
			r.ID, r.AS, r.FIB.Len(), r.FIB.Generation())
	}
	if *noTagCheck {
		for _, r := range dep.Net.Routers {
			r.DisableTagCheck = true
		}
		fmt.Println("valley-free tag-check DISABLED")
	}

	fmt.Printf("\nsending packet from AS %d to prefix 0\n", *src)
	res := dep.Send(dataplane.FlowKey{SrcAddr: uint32(*src), DstAddr: 0, Proto: 6}, *src, 0)
	for i, h := range res.Hops {
		r := dep.Net.Router(h.Router)
		note := "default"
		if h.Deflected {
			note = "DEFLECTED to alternative"
		}
		fmt.Printf("  hop %2d: AS %d (router %d) -> %s\n", i, r.AS, h.Router, note)
	}
	switch {
	case res.Verdict == dataplane.VerdictDeliver:
		fmt.Printf("DELIVERED at AS %d after %d hops (%d deflections)\n",
			dep.Net.Router(res.At).AS, len(res.Hops), res.Deflections)
	case res.Reason == dataplane.DropValleyFree:
		fmt.Printf("DROPPED by the valley-free tag-check at AS %d — the data-plane loop was cut\n",
			dep.Net.Router(res.At).AS)
	case res.Reason == dataplane.DropTTL:
		fmt.Printf("TTL EXPIRED after %d hops — the packet LOOPED (this is what the tag-check prevents)\n",
			len(res.Hops))
	default:
		fmt.Printf("DROPPED (%v) at AS %d\n", res.Reason, dep.Net.Router(res.At).AS)
	}

	if *linger > 0 {
		fmt.Printf("lingering %v (debug endpoints stay live)...\n", *linger)
		time.Sleep(*linger)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-router:", err)
	os.Exit(1)
}
