// mifo-testbed reproduces the paper's prototype experiment (Section V,
// Figs. 11 and 12): 30 back-to-back 100 MB flows per source on the six-AS
// testbed, under BGP and under MIFO, reporting the aggregate-throughput
// timeline and the flow-completion-time CDF.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/packetsim"
	"repro/internal/testbed"
)

func main() {
	var (
		flows  = flag.Int("flows", 30, "flows per (S, D) pair")
		size   = flag.Float64("size-mb", 100, "flow size in MB")
		packet = flag.Bool("packet", false, "run at packet level (per-port tx queues, AIMD sources) instead of the fluid model")
	)
	flag.Parse()

	cfg := testbed.Config{FlowsPerPair: *flows, FlowSizeBits: *size * 8e6}
	if *packet {
		runPacket(cfg)
		return
	}

	cfg.MIFO = false
	bgpRes, err := testbed.Run(cfg)
	if err != nil {
		fatal(err)
	}
	cfg.MIFO = true
	mifoRes, err := testbed.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Println("== Fig. 12(a): Aggregate Throughput (Gbps) over time ==")
	fmt.Print("# BGP\n", bgpRes.Aggregate.String())
	fmt.Print("# MIFO\n", mifoRes.Aggregate.String())

	fmt.Println("\n== Fig. 12(b): Flow Completion Time CDF ==")
	fmt.Println("# x: seconds, y: CDF (%)")
	fmt.Printf("# BGP\n")
	for _, r := range bgpRes.FCT.Rows(0.5, 3.0, 25) {
		fmt.Printf("%.2f\t%.1f\n", r.X, r.Y)
	}
	fmt.Printf("# MIFO\n")
	for _, r := range mifoRes.FCT.Rows(0.5, 3.0, 25) {
		fmt.Printf("%.2f\t%.1f\n", r.X, r.Y)
	}

	fmt.Println("\n== Summary ==")
	fmt.Printf("BGP : aggregate %.2f Gbps, total %.1f s, max FCT %.2f s\n",
		bgpRes.MeanAggregateGbps, bgpRes.TotalTime, bgpRes.FCT.Max())
	fmt.Printf("MIFO: aggregate %.2f Gbps, total %.1f s, max FCT %.2f s, %d flows on alternative path\n",
		mifoRes.MeanAggregateGbps, mifoRes.TotalTime, mifoRes.FCT.Max(), mifoRes.AltFlowCount)
	fmt.Printf("MIFO improves aggregate throughput by %.0f%% over BGP (paper: 81%%)\n",
		testbed.ImprovementPercent(mifoRes, bgpRes))
}

// runPacket executes the experiment with the packet-level engine: the
// congestion signal emerges from real tx-queue occupancy and goodput from
// wire overheads — no fluid-model efficiency factors.
func runPacket(cfg testbed.Config) {
	cfg.MIFO = false
	bgpRes, err := testbed.RunPacketLevel(cfg, packetsim.Config{})
	if err != nil {
		fatal(err)
	}
	cfg.MIFO = true
	mifoRes, err := testbed.RunPacketLevel(cfg, packetsim.Config{})
	if err != nil {
		fatal(err)
	}
	summary := func(name string, r *packetsim.Results) {
		var retx, qdrops, defl int
		for _, f := range r.Flows {
			retx += f.Retransmits
			qdrops += f.QueueDrops
			defl += f.DeflectedPkts
		}
		fmt.Printf("%-5s aggregate %.2f Gbps, total %.1f s, max FCT %.2f s, %d retransmits, %d queue drops, %d deflected pkts\n",
			name, r.MeanAggregateGbps, r.TotalTime, r.FCT.Max(), retx, qdrops, defl)
	}
	fmt.Println("== Packet-level testbed (per-port queues, AIMD sources) ==")
	summary("BGP", bgpRes)
	summary("MIFO", mifoRes)
	if bgpRes.MeanAggregateGbps > 0 {
		fmt.Printf("improvement: %.0f%% (paper: 81%%)\n",
			100*(mifoRes.MeanAggregateGbps-bgpRes.MeanAggregateGbps)/bgpRes.MeanAggregateGbps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-testbed:", err)
	os.Exit(1)
}
