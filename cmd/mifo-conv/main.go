// mifo-conv analyses a convergence span log (JSONL, produced by
// mifo-sim -span-log or any span.Tracer sink) entirely offline: it
// reassembles each failure event's causal span tree and reports how long
// the pipeline took from failure injection to data-plane consistency,
// and where inside the pipeline — route recompute, daemon epoch, FIB
// commit, generation swap — that time went.
//
// Usage:
//
//	mifo-sim -exp resilience -span-log spans.jsonl
//	mifo-conv spans.jsonl                  # report: events, stages, CDF
//	mifo-conv -events spans.jsonl          # per-event table
//	mifo-conv -min-events 6 spans.jsonl    # fail unless >= 6 events traced
//	cat spans.jsonl | mifo-conv            # reads stdin without a file arg
//
// Exit status is 2 when any traced failure event did not provably reach
// data-plane consistency (an incomplete span tree or an orphaned trace),
// so the analyzer can gate CI: `mifo-conv spans.jsonl || fail`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs/span"
)

func main() {
	var (
		events    = flag.Bool("events", false, "print the per-event table instead of only the summary")
		minEvents = flag.Int("min-events", 0, "fail (exit 2) when fewer failure events were traced")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one log file argument, got %d", flag.NArg()))
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	recs, err := span.ReadRecords(in)
	if err != nil {
		fatal(err)
	}
	rep := span.Analyze(recs)

	fmt.Printf("# %s\n", name)
	fmt.Printf("%d spans, %d failure events (%d complete), %d orphan traces\n",
		rep.Records, len(rep.Events), rep.CompleteEvents(), rep.OrphanTraces)

	if *events || !allComplete(rep) {
		printEvents(rep)
	}
	printStages(rep)
	printCDF(rep)

	bad := len(rep.Events) - rep.CompleteEvents() + rep.OrphanTraces
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mifo-conv: %d failure events not proven consistent\n", bad)
		os.Exit(2)
	}
	if len(rep.Events) < *minEvents {
		fmt.Fprintf(os.Stderr, "mifo-conv: traced %d failure events, want at least %d\n",
			len(rep.Events), *minEvents)
		os.Exit(2)
	}
}

func allComplete(rep *span.Report) bool {
	return rep.CompleteEvents() == len(rep.Events) && rep.OrphanTraces == 0
}

// printEvents prints one row per failure event, in log order.
func printEvents(rep *span.Report) {
	fmt.Println("\n## Failure events")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "event\tlink\tdirty\tspans\tconvergence\tstatus")
	for i := range rep.Events {
		ev := &rep.Events[i]
		status := "complete"
		if !ev.Complete {
			status = "INCOMPLETE: " + ev.Why
		}
		fmt.Fprintf(w, "%s\t%d-%d\t%d\t%d\t%v\t%s\n",
			ev.Root.Name, ev.Root.A, ev.Root.B, ev.Dirty, ev.Spans,
			ev.Convergence.Round(time.Microsecond), status)
	}
	w.Flush() //mifolint:ignore droppederr tabwriter over stdout; a write error here has nowhere to go
}

// printStages prints the per-stage latency breakdown across all events.
func printStages(rep *span.Report) {
	fmt.Println("\n## Pipeline stages (all events)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\tspans\tmean\tmax\ttotal")
	keys := append([]string(nil), span.StageOrder...)
	keys = append(keys, "other")
	for _, k := range keys {
		a, ok := rep.Stage[k]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\n", k, a.Count,
			a.Mean().Round(time.Nanosecond), a.Max.Round(time.Nanosecond),
			a.Total.Round(time.Nanosecond))
	}
	w.Flush() //mifolint:ignore droppederr tabwriter over stdout; a write error here has nowhere to go
}

// printCDF prints the convergence-latency distribution over complete
// events: time from failure injection to data-plane consistency.
func printCDF(rep *span.Report) {
	secs := rep.ConvergenceSeconds()
	if len(secs) == 0 {
		return
	}
	cdf := metrics.NewCDF(secs...)
	fmt.Println("\n## Convergence latency (failure event -> data-plane consistency)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "quantile\tlatency")
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		fmt.Fprintf(w, "p%.0f\t%v\n", q*100, seconds(cdf.Quantile(q)))
	}
	fmt.Fprintf(w, "mean\t%v\n", seconds(cdf.Mean()))
	fmt.Fprintf(w, "min\t%v\n", seconds(cdf.Min()))
	w.Flush() //mifolint:ignore droppederr tabwriter over stdout; a write error here has nowhere to go
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-conv:", err)
	os.Exit(1)
}
