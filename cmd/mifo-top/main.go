// mifo-top shows what MIFO's data plane is doing to congested links: the
// hottest links by utilization, detected congestion episodes, and the
// offload attribution joining each episode to the deflections that
// relieved it (Fig. 8's offload scalar, resolved per link).
//
// It consumes either a live /debug/tsdb endpoint or an offline dump:
//
//	mifo-top -addr http://127.0.0.1:6061     # live view, refreshed every -interval
//	mifo-top -addr :6061 -once               # one JSON snapshot to stdout
//	mifo-top -log tsdb.jsonl                 # analyze a mifo-sim -tsdb-log dump
//	mifo-top -log tsdb.jsonl -flight f.jsonl # join per-AS flight-recorder deflections
//	mifo-top -log tsdb.jsonl -min-episodes 1 # CI gate: exit 1 below the floor
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/obs/tsdb"
)

func main() {
	var (
		addr        = flag.String("addr", "", "debug server base (http://host:port, host:port or :port) serving /debug/tsdb")
		logPath     = flag.String("log", "", "offline mode: analyze this mifo-sim -tsdb-log dump instead of a live endpoint")
		flight      = flag.String("flight", "", "also join a flight-recorder JSONL log: per-AS deflected-journey counts against each episode's link")
		once        = flag.Bool("once", false, "print one JSON snapshot (spec, top links, episode report) and exit")
		interval    = flag.Duration("interval", 2*time.Second, "live-view refresh period")
		topN        = flag.Int("top", 10, "links shown in the utilization table")
		threshold   = flag.Float64("threshold", 0, "override the installed episode threshold (0 = use the spec's)")
		window      = flag.Int64("window", 0, "override the installed episode window, in the series' timestamp unit (0 = use the spec's)")
		minEpisodes = flag.Int("min-episodes", 0, "exit non-zero when fewer congestion episodes are detected (CI gate)")
	)
	flag.Parse()
	if (*addr == "") == (*logPath == "") {
		fmt.Fprintln(os.Stderr, "mifo-top: exactly one of -addr or -log is required")
		os.Exit(2)
	}

	var snap *snapshot
	var err error
	if *logPath != "" {
		snap, err = loadDump(*logPath, *threshold, *window)
	} else {
		snap, err = fetch(baseURL(*addr), *threshold, *window)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mifo-top:", err)
		os.Exit(1)
	}
	if *flight != "" {
		if err := joinFlight(snap, *flight); err != nil {
			fmt.Fprintln(os.Stderr, "mifo-top:", err)
			os.Exit(1)
		}
	}

	switch {
	case *once:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, "mifo-top:", err)
			os.Exit(1)
		}
	case *logPath != "":
		render(os.Stdout, snap, *topN)
	default:
		// Live view: redraw until interrupted. The gate below still runs
		// if the poll loop ever errors out.
		for {
			fmt.Print("\033[H\033[2J")
			render(os.Stdout, snap, *topN)
			fmt.Printf("\n[%s] refreshing every %v — Ctrl-C to quit\n",
				time.Now().Format("15:04:05"), *interval)
			time.Sleep(*interval)
			next, err := fetch(baseURL(*addr), *threshold, *window)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mifo-top:", err)
				os.Exit(1)
			}
			snap = next
		}
	}

	if *minEpisodes > 0 && len(snap.Report.Episodes) < *minEpisodes {
		fmt.Fprintf(os.Stderr, "mifo-top: %d congestion episodes detected, want >= %d\n",
			len(snap.Report.Episodes), *minEpisodes)
		os.Exit(1)
	}
}

// snapshot is everything one view renders; -once emits it verbatim.
type snapshot struct {
	Spec tsdb.EpisodeSpec `json:"spec"`
	// Links is the utilization table, hottest first.
	Links []linkRow `json:"links"`
	// Report is the episode analysis under the effective spec.
	Report *tsdb.Report `json:"report"`
	// DeflectionsByAS joins the flight log (when -flight is given):
	// deflected-journey counts keyed by the AS that deflected.
	DeflectionsByAS map[string]int `json:"deflections_by_as,omitempty"`
}

// linkRow is one util series' live state.
type linkRow struct {
	Series string  `json:"series"`
	Last   float64 `json:"last"`
	Peak   float64 `json:"peak"`
	Points uint64  `json:"points"`
}

// loadDump reads a mifo-sim -tsdb-log file and analyzes it offline.
func loadDump(path string, threshold float64, window int64) (*snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	series, spec, err := tsdb.ReadDump(f)
	if err != nil {
		return nil, err
	}
	if spec.Util == "" {
		return nil, fmt.Errorf("%s carries no episode spec (not a tsdb dump?)", path)
	}
	if threshold > 0 {
		spec.Threshold = threshold
	}
	if window > 0 {
		spec.Window = window
	}
	snap := &snapshot{Spec: spec, Report: tsdb.Analyze(series, spec)}
	for _, sd := range series {
		if sd.Name != spec.Util || len(sd.Points) == 0 {
			continue
		}
		row := linkRow{Series: strings.Join(sd.Values, "/"), Points: uint64(len(sd.Points))}
		row.Last = sd.Points[len(sd.Points)-1].V
		for _, p := range sd.Points {
			if p.V > row.Peak {
				row.Peak = p.V
			}
		}
		snap.Links = append(snap.Links, row)
	}
	sortLinks(snap.Links)
	return snap, nil
}

// indexSummary mirrors the /debug/tsdb index entries mifo-top needs.
type indexSummary struct {
	Name   string      `json:"name"`
	Values []string    `json:"values"`
	Total  uint64      `json:"total_points"`
	Latest *tsdb.Point `json:"latest"`
}

// baseURL normalizes -addr into an http base: ":6061" and "host:6061"
// both work, matching what ServeDebug prints.
func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

// fetch pulls one live snapshot from a /debug/tsdb endpoint.
func fetch(base string, threshold float64, window int64) (*snapshot, error) {
	var idx struct {
		Spec   tsdb.EpisodeSpec `json:"spec"`
		Series []indexSummary   `json:"series"`
	}
	if err := getJSON(base+"/debug/tsdb/", &idx); err != nil {
		return nil, err
	}
	snap := &snapshot{Spec: idx.Spec}
	for _, s := range idx.Series {
		if s.Name != idx.Spec.Util || s.Latest == nil {
			continue
		}
		// The live index has no per-point history; peak tracks the latest
		// sample (query the /query endpoint for full history).
		snap.Links = append(snap.Links, linkRow{
			Series: strings.Join(s.Values, "/"),
			Last:   s.Latest.V, Peak: s.Latest.V, Points: s.Total,
		})
	}
	sortLinks(snap.Links)
	epURL := base + "/debug/tsdb/episodes"
	var params []string
	if threshold > 0 {
		params = append(params, fmt.Sprintf("threshold=%g", threshold))
	}
	if window > 0 {
		params = append(params, fmt.Sprintf("window=%d", window))
	}
	if len(params) > 0 {
		epURL += "?" + strings.Join(params, "&")
	}
	snap.Report = &tsdb.Report{}
	if err := getJSON(epURL, snap.Report); err != nil {
		return nil, err
	}
	return snap, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //mifolint:ignore droppederr best-effort error-body excerpt; the status line already failed the request
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// joinFlight folds a flight-recorder log into the snapshot: every
// deflected step of every journey, counted by the AS that deflected.
// With netsim's "as->as" link labels this answers "which episodes did
// these journeys relieve" at a glance.
func joinFlight(snap *snapshot, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byAS := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec audit.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // seal lines and foreign kinds are not journeys
		}
		if rec.Kind != audit.KindPacket && rec.Kind != audit.KindPath {
			continue
		}
		for _, s := range rec.Steps {
			if s.Deflected {
				byAS[fmt.Sprint(s.AS)]++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	snap.DeflectionsByAS = byAS
	return nil
}

func sortLinks(rows []linkRow) {
	// Peak first: in an offline dump every drained link ends at zero
	// utilization, so the final sample says nothing about how hot the
	// link ran. Live snapshots set Peak = Last, so this sorts by the
	// current reading there.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Peak != rows[j].Peak {
			return rows[i].Peak > rows[j].Peak
		}
		if rows[i].Last != rows[j].Last {
			return rows[i].Last > rows[j].Last
		}
		return rows[i].Series < rows[j].Series
	})
}

// render prints the human view: spec, hottest links, episode table, and
// the optional flight join.
func render(w io.Writer, snap *snapshot, topN int) {
	sp := snap.Report.Spec
	fmt.Fprintf(w, "util series %q  threshold %.2f  window %d  (%d series scanned)\n",
		sp.Util, sp.Threshold, sp.Window, snap.Report.SeriesScanned)

	fmt.Fprintf(w, "\nhottest links (%d of %d):\n", min(topN, len(snap.Links)), len(snap.Links))
	fmt.Fprintf(w, "  %-24s %8s %8s %8s\n", "link", "util", "peak", "points")
	for i, row := range snap.Links {
		if i >= topN {
			break
		}
		fmt.Fprintf(w, "  %-24s %8.3f %8.3f %8d\n", row.Series, row.Last, row.Peak, row.Points)
	}

	rep := snap.Report
	fmt.Fprintf(w, "\ncongestion episodes: %d on %d links (run totals: %d deflections, %.3g offloaded bits, %.3g in-episode)\n",
		len(rep.Episodes), rep.LinksWithEpisodes, rep.TotalDeflections, rep.TotalOffloadBits, rep.EpisodeOffloadBits)
	if len(rep.Episodes) > 0 {
		// Show the episodes that moved the most traffic; -once emits the
		// full report as JSON when everything is needed.
		shown := append([]tsdb.Episode(nil), rep.Episodes...)
		sort.Slice(shown, func(i, j int) bool {
			if shown[i].OffloadBits != shown[j].OffloadBits {
				return shown[i].OffloadBits > shown[j].OffloadBits
			}
			return shown[i].Start < shown[j].Start
		})
		if len(shown) > 2*topN {
			shown = shown[:2*topN]
		}
		fmt.Fprintf(w, "  %-24s %-14s %6s %6s %6s %10s %14s %12s\n",
			"link", "start", "dur", "peak", "defl", "offload", "relief-lat", "state")
		for _, e := range shown {
			state := "relieved"
			if e.Active {
				state = "active"
			}
			lat := "-"
			if e.ReliefLatency >= 0 {
				lat = fmt.Sprint(e.ReliefLatency)
			}
			fmt.Fprintf(w, "  %-24s %-14d %6d %6.2f %6d %10.3g %14s %12s\n",
				e.Series, e.Start, e.Duration(), e.Peak, e.Deflections, e.OffloadBits, lat, state)
		}
		if n := len(rep.Episodes) - len(shown); n > 0 {
			fmt.Fprintf(w, "  ... %d more episodes (use -once for the full JSON report)\n", n)
		}
	}

	if snap.DeflectionsByAS != nil {
		type kv struct {
			as string
			n  int
		}
		var rows []kv
		for as, n := range snap.DeflectionsByAS {
			rows = append(rows, kv{as, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].as < rows[j].as
		})
		fmt.Fprintf(w, "\nflight-recorder join: deflected journeys by AS (%d ASes deflected)\n", len(rows))
		for i, r := range rows {
			if i >= topN {
				break
			}
			fmt.Fprintf(w, "  AS %-6s %6d journeys\n", r.as, r.n)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
