// mifo-netd runs MIFO as a distributed system on this machine: every
// border router is a goroutine with its own UDP socket exchanging real
// IPv4 datagrams (the valley-free tag in the reserved flag bit, IP-in-IP
// for the iBGP hand-off), while MIFO daemons update the FIBs concurrently
// — the paper's kernel-module + XORP-daemon prototype, in one process.
//
// Usage:
//
//	mifo-netd                 # Fig. 2(c) scenario, congest and watch
//	mifo-netd -n 50 -pkts 500 # random topology stress
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/netd"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/topo"
)

func main() {
	var (
		n       = flag.Int("n", 0, "random topology size (0 = the Fig. 2(c) scenario)")
		pkts    = flag.Int("pkts", 100, "packets to inject")
		seed    = flag.Int64("seed", 1, "topology seed")
		selfMon = flag.Bool("self", false, "derive congestion from measured socket traffic (EWMA link monitor) instead of a preset load")
		dbgAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/trace and pprof on this address (e.g. :6060)")
		linger  = flag.Duration("linger", 0, "keep running (and serving -debug-addr) this long after the experiment finishes")
	)
	flag.Parse()

	var g *topo.Graph
	var err error
	var expand []int
	dst := 0
	if *n > 0 {
		g, err = topo.Generate(topo.GenConfig{N: *n, Seed: *seed})
	} else {
		// Fig. 2(c): AS 0 expanded to three border routers; destination 4.
		b := topo.NewBuilder(5)
		b.AddPC(1, 0).AddPC(2, 0).AddPC(3, 0)
		b.AddPC(1, 4).AddPC(2, 4).AddPC(3, 4)
		g, err = b.Build()
		expand = []int{0}
		dst = 4
	}
	if err != nil {
		fatal(err)
	}

	capacity := 1e9
	if *selfMon {
		// The demo's packets are headers only (24 B on the wire), so the
		// link capacity must be tiny for the paced stream to register as
		// congestion on loopback.
		capacity = 1e5
	}
	dep := core.NewDeployment(g, core.Config{ExpandASes: expand, LinkCapacityBps: capacity})
	dep.InstallDestination(bgp.Compute(g, dst))

	fabric, err := netd.NewFabric(dep.Net)
	if err != nil {
		fatal(err)
	}

	// The daemons run concurrently with forwarding, as in the prototype.
	runtime := core.NewRuntime(dep, 5*time.Millisecond)

	if *dbgAddr != "" {
		// One registry and one trace cover the whole stack: the fabric's
		// packet counters, the daemons' control-loop timings, and the
		// structured deflection/FIB-update event stream.
		tr := obs.NewTrace(0)
		fabric.EnableTrace(tr)
		dep.Trace = tr
		runtime.Instrument(fabric.Registry())
		// Per-port utilization lands in the embedded TSDB; browse it (and
		// run episode detection) at /debug/tsdb while the fabric runs.
		db := tsdb.NewStore(tsdb.Options{})
		fabric.AttachTSDB(db)
		dep.AttachTSDB(db)
		srv, err := obs.ServeDebug(*dbgAddr, fabric.Registry(), tr, db)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on %s (/metrics, /debug/vars, /debug/trace, /debug/tsdb/, /debug/pprof/)\n", srv.URL())
		defer srv.Close()
	}

	fabric.Start()
	defer fabric.Stop()
	fmt.Printf("%d routers listening on loopback UDP (router 0 at %v)\n",
		len(dep.Net.Routers), fabric.Addr(0))

	runtime.Start()
	defer runtime.Stop()

	src := 0
	if *n > 0 {
		src = g.N() / 2
	}
	if *selfMon {
		// Fully self-driving: tiny link capacities so the injected stream
		// itself registers as congestion through the EWMA monitor.
		stop := fabric.MonitorLoads(5 * time.Millisecond)
		defer stop()
		fmt.Println("link monitor active: congestion will be measured, not preset")
	} else {
		// Preset congestion on the default egress so deflection is instant.
		if *n > 0 {
			if t := bgp.Compute(g, dst); t.Reachable(src) {
				next := t.NextHop(src)
				dep.SetLinkLoad(src, next, 1e9)
				fmt.Printf("congested default egress AS %d -> AS %d\n", src, next)
			}
		} else {
			dep.SetLinkLoad(0, 1, 1e9)
			fmt.Println("congested AS 0's default egress towards AS 1")
		}
	}
	time.Sleep(30 * time.Millisecond) // let the daemons install alternatives

	go func() {
		for i := 0; i < *pkts; i++ {
			// Pace the injection: these are real UDP sockets and an
			// unpaced burst overruns the loopback receive buffers.
			time.Sleep(200 * time.Microsecond)
			p := &dataplane.Packet{
				Flow: dataplane.FlowKey{
					SrcAddr: uint32(src),
					DstAddr: dataplane.PrefixAddr(int32(dst)),
					SrcPort: uint16(i),
					DstPort: 80,
					Proto:   6,
				},
				Dst: int32(dst),
			}
			fabric.Inject(p, dep.Routers(src)[0].ID)
		}
	}()

	delivered := 0
	timedOut := false
	timeout := time.After(5 * time.Second)
	for delivered < *pkts {
		select {
		case d := <-fabric.Deliveries():
			delivered++
			if delivered <= 3 || delivered == *pkts {
				fmt.Printf("  delivery %d at AS %d (flow port %d, tag=%v)\n",
					delivered, dep.Net.Router(d.At).AS, d.Packet.Flow.SrcPort, d.Packet.Tag)
			}
		case <-timeout:
			fmt.Printf("timed out with %d/%d delivered\n", delivered, *pkts)
			timedOut = true
			goto done
		}
	}
done:
	s := fabric.TotalStats()
	fmt.Printf("\ntotals: %d datagrams received, %d forwarded, %d deflected, %d delivered\n",
		s.Received, s.Forwarded, s.Deflected, s.Delivered)
	fmt.Printf("drops: %d valley-free, %d no-route, %d TTL (a TTL drop would be a loop)\n",
		s.DropValleyFree, s.DropNoRoute, s.DropTTL)
	if *linger > 0 {
		fmt.Printf("lingering %v (debug endpoints stay live)...\n", *linger)
		time.Sleep(*linger)
	}
	if timedOut {
		// An incomplete run is a failure: some packets were lost or looped.
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-netd:", err)
	os.Exit(1)
}
