// mifo-replay runs an archived workload (traffic CSV) through the flow
// simulator under a chosen policy and writes per-flow results as CSV —
// the batch-processing path for external analysis.
//
// Usage:
//
//	mifo-sim ... (or any tool) to produce a workload, or:
//	mifo-replay -gen-workload w.csv -n 1000 -flows 5000
//	mifo-replay -workload w.csv -policy mifo -results out.csv
//	mifo-replay -workload w.csv -policy bgp -deploy 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "topology size (must match the workload's AS space)")
		seed     = flag.Int64("seed", 1, "topology seed")
		workload = flag.String("workload", "", "workload CSV to replay")
		genOut   = flag.String("gen-workload", "", "generate a workload CSV and exit")
		flows    = flag.Int("flows", 5000, "flows when generating")
		rate     = flag.Float64("rate", 0, "arrival rate when generating (0 = auto)")
		policy   = flag.String("policy", "mifo", "bgp, miro or mifo")
		deploy   = flag.Float64("deploy", 1.0, "deployment fraction for miro/mifo")
		results  = flag.String("results", "", "write per-flow results CSV here ('-' or empty = stdout summary only)")
	)
	flag.Parse()

	g, err := topo.Generate(topo.GenConfig{N: *n, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	if *genOut != "" {
		o := experiments.Options{N: *n, Flows: *flows, ArrivalRate: *rate, Seed: *seed}
		fl, genErr := traffic.Uniform(traffic.UniformConfig{
			N: g.N(), Flows: *flows, ArrivalRate: effectiveRate(o), Seed: *seed + 300,
		})
		if genErr != nil {
			fatal(genErr)
		}
		f, createErr := os.Create(*genOut)
		if createErr != nil {
			fatal(createErr)
		}
		if writeErr := traffic.WriteCSV(f, fl); writeErr != nil {
			fatal(writeErr)
		}
		if closeErr := f.Close(); closeErr != nil {
			fatal(closeErr)
		}
		fmt.Printf("wrote %d flows to %s\n", len(fl), *genOut)
		return
	}

	if *workload == "" {
		fatal(fmt.Errorf("need -workload (or -gen-workload)"))
	}
	wf, err := os.Open(*workload)
	if err != nil {
		fatal(err)
	}
	fl, err := traffic.ReadCSV(wf)
	wf.Close() //mifolint:ignore droppederr read-side close: ReadCSV has already consumed and validated the stream
	if err != nil {
		fatal(err)
	}

	cfg := netsim.Config{Capable: experiments.DeploymentMask(g.N(), *deploy, *seed+500)}
	switch strings.ToLower(*policy) {
	case "bgp":
		cfg.Policy = netsim.PolicyBGP
	case "miro":
		cfg.Policy = netsim.PolicyMIRO
	case "mifo":
		cfg.Policy = netsim.PolicyMIFO
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	res, err := netsim.Run(g, fl, cfg)
	if err != nil {
		fatal(err)
	}

	cdf := res.ThroughputCDF()
	fmt.Printf("%s over %d flows (deploy %.0f%%): mean %.0f Mbps, median %.0f Mbps, >=500 Mbps %.1f%%, offload %.1f%%\n",
		cfg.Policy, res.Routable(), 100**deploy, cdf.Mean(), cdf.Quantile(0.5),
		100*res.FractionAtLeastMbps(500), 100*res.OffloadFraction())

	if *results != "" && *results != "-" {
		f, err := os.Create(*results)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("per-flow results written to %s\n", *results)
	}
}

// effectiveRate resolves the auto-scaled arrival rate the experiments use.
func effectiveRate(o experiments.Options) float64 {
	if o.ArrivalRate > 0 {
		return o.ArrivalRate
	}
	r := 25 * 44340 / float64(o.N)
	if r < 100 {
		r = 100
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-replay:", err)
	os.Exit(1)
}
