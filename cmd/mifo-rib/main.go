// mifo-rib inspects the control-plane state MIFO mines: for a (src, dst)
// AS pair it prints the default BGP path, the source's full multi-path RIB
// with each alternative's spliced path, and the number of forwarding paths
// available at different deployment levels (Fig. 7's quantity for one pair).
//
// Usage:
//
//	mifo-rib -n 1000 -src 500 -dst 3
//	mifo-rib -in topo.txt -src 10 -dst 42 -hops
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bgp"
	"repro/internal/topo"
)

func main() {
	var (
		n    = flag.Int("n", 1000, "generate a topology with this many ASes")
		seed = flag.Int64("seed", 1, "generator seed")
		in   = flag.String("in", "", "read a topology file instead of generating")
		src  = flag.Int("src", 1, "source AS")
		dst  = flag.Int("dst", 0, "destination AS")
		hops = flag.Bool("hops", false, "also print per-hop RIBs along the default path")
	)
	flag.Parse()

	var g *topo.Graph
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		g, _, err = topo.Parse(f)
		f.Close() //mifolint:ignore droppederr read-side close: Parse has already consumed and validated the stream
	} else {
		g, err = topo.Generate(topo.GenConfig{N: *n, Seed: *seed})
	}
	if err != nil {
		fatal(err)
	}
	if *src < 0 || *src >= g.N() || *dst < 0 || *dst >= g.N() || *src == *dst {
		fatal(fmt.Errorf("need distinct src/dst in [0, %d)", g.N()))
	}

	table := bgp.Compute(g, *dst)
	if !table.Reachable(*src) {
		fmt.Printf("AS %d has no route to AS %d\n", *src, *dst)
		return
	}

	fmt.Printf("default path (%s route, %d hops): %v\n",
		table.Class(*src), table.Hops(*src), table.ASPath(*src))

	fmt.Printf("\nRIB at AS %d towards AS %d:\n", *src, *dst)
	printRIB(g, table, *src)

	if *hops {
		for _, v := range table.ASPath(*src)[1:] {
			if v == *dst {
				break
			}
			fmt.Printf("\nRIB at on-path AS %d:\n", v)
			printRIB(g, table, v)
		}
	}

	full := bgp.CountForwardingPaths(g, table, *src, nil)
	halfMask := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		halfMask[v] = true
	}
	half := bgp.CountForwardingPaths(g, table, *src, halfMask)
	fmt.Printf("\nforwarding paths available: %d at 100%% deployment, %d at 50%%, 1 under plain BGP\n",
		full, half)
}

func printRIB(g *topo.Graph, table *bgp.Dest, v int) {
	rib := bgp.RIB(g, table, v)
	if len(rib) == 0 {
		fmt.Println("  (empty)")
		return
	}
	for i, alt := range rib {
		marker := "alt    "
		if i == 0 {
			marker = "default"
		}
		fmt.Printf("  %s via AS %-6d class=%-8s hops=%-2d path=%v\n",
			marker, alt.Via, alt.Class, alt.Hops, bgp.PathVia(table, v, int(alt.Via)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mifo-rib:", err)
	os.Exit(1)
}
